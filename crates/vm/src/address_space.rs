//! Multi-tenant address spaces: per-ASID page tables plus a shared
//! global table.
//!
//! A consolidation scenario runs several tenant processes on one core.
//! Each tenant owns a full [`PageTable`] (its own seed and disjoint
//! physical region, like the existing per-SMT-thread split), and an
//! optional *shared* table backs global mappings — kernel-style pages
//! visible in every address space. Whether a virtual 2 MiB region is
//! global is a pure function of the region and the global seed, so the
//! same virtual address can never be both global and per-tenant: the
//! "never-both" invariant the tagged TLB lookup relies on.
//!
//! The degenerate single-tenant construction ([`AddressSpace::single`])
//! delegates straight to one [`PageTable`] and tags everything
//! [`Asid::KERNEL`] — byte-identical to pre-multi-tenant behavior.

use crate::page_table::{HugePagePolicy, PageTable, Translation};
use itpx_types::{Asid, PageSize, Rng64, TranslationKind, VirtAddr};
use std::collections::HashMap;

/// Physical-region stride separating tenant address spaces: each tenant's
/// frames, huge frames, and page-table nodes land in a disjoint window.
const TENANT_REGION_STRIDE: u64 = 1 << 48;

/// Physical-region base of the shared global table, above every tenant
/// window.
const GLOBAL_REGION_BASE: u64 = 1 << 56;

/// Seed salt deriving each tenant's frame-scatter seed from the base seed
/// (tenant 0 keeps the base seed itself, preserving the degenerate case).
const TENANT_SEED_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// A set of tenant page tables plus an optional shared global table,
/// fronted by a current-ASID register.
#[derive(Debug)]
pub struct AddressSpace {
    /// One page table per tenant, indexed by ASID.
    tables: Vec<PageTable>,
    /// The shared table backing global mappings (absent when
    /// `global_fraction` is zero).
    shared: Option<PageTable>,
    /// Fraction of virtual 2 MiB regions backed by global mappings.
    global_fraction: f64,
    /// Seed of the per-region global decision hash.
    global_seed: u64,
    /// Global/private decision per 2 MiB region, cached at first touch
    /// (the decision itself is a pure function of region and seed).
    region_global: HashMap<u64, bool>,
    /// The tenant lookups currently translate under.
    current: Asid,
}

impl AddressSpace {
    /// The single-tenant degenerate construction: one table, no global
    /// region, everything tagged [`Asid::KERNEL`]. Translations are
    /// byte-identical to a bare `PageTable::with_region_offset` with the
    /// same arguments.
    pub fn single(huge: HugePagePolicy, seed: u64, region_offset: u64) -> Self {
        Self {
            tables: vec![PageTable::with_region_offset(huge, seed, region_offset)],
            shared: None,
            global_fraction: 0.0,
            global_seed: 0,
            region_global: HashMap::new(),
            current: Asid::KERNEL,
        }
    }

    /// A multi-tenant address-space set. Tenant `t` gets its own seed
    /// (`seed` for tenant 0) and a disjoint physical window; a
    /// `global_fraction > 0.0` adds a shared table whose mappings are
    /// tagged [`Asid::GLOBAL`].
    ///
    /// # Panics
    ///
    /// Panics if `tenants` is zero, exceeds the tenant stride budget, or
    /// `global_fraction` is outside `[0, 1]`.
    pub fn multi(
        tenants: usize,
        huge: HugePagePolicy,
        seed: u64,
        region_offset: u64,
        global_fraction: f64,
        global_seed: u64,
    ) -> Self {
        assert!(tenants >= 1, "at least one tenant");
        assert!(tenants <= 256, "tenant count exceeds the region budget");
        assert!(
            (0.0..=1.0).contains(&global_fraction),
            "global_fraction in [0, 1]"
        );
        let tables = (0..tenants as u64)
            .map(|t| {
                PageTable::with_region_offset(
                    huge,
                    seed ^ t.wrapping_mul(TENANT_SEED_SALT),
                    region_offset + t * TENANT_REGION_STRIDE,
                )
            })
            .collect();
        let shared = (global_fraction > 0.0).then(|| {
            PageTable::with_region_offset(huge, global_seed, region_offset + GLOBAL_REGION_BASE)
        });
        Self {
            tables,
            shared,
            global_fraction,
            global_seed,
            region_global: HashMap::new(),
            current: Asid::KERNEL,
        }
    }

    /// Number of tenant address spaces.
    pub fn tenants(&self) -> usize {
        self.tables.len()
    }

    /// The tenant translations currently run under.
    pub fn current(&self) -> Asid {
        self.current
    }

    /// Retargets translation to tenant `asid` (a context switch).
    ///
    /// # Panics
    ///
    /// Panics if `asid` does not name a tenant.
    pub fn switch_to(&mut self, asid: Asid) {
        assert!(
            (asid.0 as usize) < self.tables.len(),
            "ASID {asid} beyond the {} configured tenants",
            self.tables.len()
        );
        self.current = asid;
    }

    // itpx-allow: hot-float per-region fraction compare with a seeded hash; decided once per region and cached by region_is_global
    fn is_global(&self, region_vpn2m: u64) -> bool {
        if self.global_fraction <= 0.0 {
            return false;
        }
        if self.global_fraction >= 1.0 {
            return true;
        }
        let mut h = Rng64::new(self.global_seed ^ region_vpn2m.wrapping_mul(TENANT_SEED_SALT));
        h.f64() < self.global_fraction
    }

    /// Whether the 2 MiB region containing `va` is globally mapped,
    /// caching the (pure) decision at first touch.
    pub fn region_is_global(&mut self, region_vpn2m: u64) -> bool {
        if self.shared.is_none() {
            return false;
        }
        if let Some(&g) = self.region_global.get(&region_vpn2m) {
            return g;
        }
        let g = self.is_global(region_vpn2m);
        // itpx-allow: hot-alloc first touch of a 2 MiB region; bounded by the mapped footprint, not the access count
        self.region_global.insert(region_vpn2m, g);
        g
    }

    /// Translates `va` in the current address space: global regions route
    /// to the shared table (tag [`Asid::GLOBAL`]), everything else to the
    /// current tenant's table (tagged with its ASID).
    pub fn translate(&mut self, va: VirtAddr, kind: TranslationKind) -> Translation {
        let region = va.vpn(PageSize::Huge2M).0;
        if self.region_is_global(region) {
            // region_is_global is false whenever `shared` is absent
            let shared = self.shared.as_mut().expect("global region has a table");
            let mut tr = shared.translate(va, kind);
            tr.asid = Asid::GLOBAL;
            tr
        } else {
            let mut tr = self.tables[self.current.0 as usize].translate(va, kind);
            tr.asid = self.current;
            tr
        }
    }

    /// Flips the current tenant's huge/base mapping of a 2 MiB region —
    /// promotion/demotion churn. Global regions are left untouched (their
    /// mappings must stay stable across every tenant). Returns the new
    /// state, or `None` if the region is global.
    pub fn churn_region(&mut self, region_vpn2m: u64) -> Option<bool> {
        if self.region_is_global(region_vpn2m) {
            return None;
        }
        Some(self.tables[self.current.0 as usize].toggle_region_huge(region_vpn2m))
    }

    /// The current tenant's page table (read access for diagnostics).
    pub fn table(&self) -> &PageTable {
        &self.tables[self.current.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itpx_types::{PhysAddr, VirtAddr};

    #[test]
    fn single_is_byte_identical_to_a_bare_page_table() {
        let mut space = AddressSpace::single(HugePagePolicy::none(), 42, 0);
        let mut table = PageTable::with_region_offset(HugePagePolicy::none(), 42, 0);
        for i in 0..64u64 {
            let va = VirtAddr::new(0x10_0000_0000 + i * 4096);
            assert_eq!(
                space.translate(va, TranslationKind::Data),
                table.translate(va, TranslationKind::Data)
            );
        }
    }

    #[test]
    fn tenants_map_the_same_va_to_disjoint_frames() {
        let mut space = AddressSpace::multi(4, HugePagePolicy::none(), 42, 0, 0.0, 0);
        let va = VirtAddr::new(0x10_0000_0000);
        let mut frames: Vec<PhysAddr> = Vec::new();
        for t in 0..4 {
            space.switch_to(Asid(t));
            let tr = space.translate(va, TranslationKind::Data);
            assert_eq!(tr.asid, Asid(t));
            frames.push(tr.frame);
        }
        frames.sort();
        frames.dedup();
        assert_eq!(frames.len(), 4, "each tenant owns its own frame");
    }

    #[test]
    fn tenant_zero_matches_the_degenerate_single_construction() {
        let mut multi = AddressSpace::multi(4, HugePagePolicy::none(), 42, 0, 0.0, 0);
        let mut single = AddressSpace::single(HugePagePolicy::none(), 42, 0);
        let va = VirtAddr::new(0x20_0000_0000);
        assert_eq!(
            multi.translate(va, TranslationKind::Data),
            single.translate(va, TranslationKind::Data)
        );
    }

    #[test]
    fn global_regions_share_one_mapping_across_tenants() {
        let mut space = AddressSpace::multi(4, HugePagePolicy::none(), 42, 0, 1.0, 7);
        let va = VirtAddr::new(0x30_0000_0000);
        space.switch_to(Asid(1));
        let a = space.translate(va, TranslationKind::Data);
        space.switch_to(Asid(2));
        let b = space.translate(va, TranslationKind::Data);
        assert_eq!(a, b, "global mapping is tenant-independent");
        assert_eq!(a.asid, Asid::GLOBAL);
    }

    #[test]
    fn global_decision_is_a_pure_function_of_region_and_seed() {
        let mut a = AddressSpace::multi(2, HugePagePolicy::none(), 1, 0, 0.5, 9);
        let mut b = AddressSpace::multi(2, HugePagePolicy::none(), 1, 0, 0.5, 9);
        let mut globals = 0;
        for r in 0..256u64 {
            let g = a.region_is_global(r);
            assert_eq!(g, b.region_is_global(r), "instances agree on region {r}");
            globals += g as usize;
        }
        assert!(
            (64..=192).contains(&globals),
            "roughly half global, got {globals}"
        );
    }

    #[test]
    fn churn_skips_global_regions() {
        let mut space = AddressSpace::multi(2, HugePagePolicy::none(), 42, 0, 1.0, 7);
        assert_eq!(space.churn_region(0x100), None);
        let mut private = AddressSpace::multi(2, HugePagePolicy::none(), 42, 0, 0.0, 0);
        assert_eq!(private.churn_region(0x100), Some(true));
    }

    #[test]
    #[should_panic(expected = "beyond")]
    fn switching_past_the_tenant_count_panics() {
        let mut space = AddressSpace::multi(2, HugePagePolicy::none(), 42, 0, 0.0, 0);
        space.switch_to(Asid(2));
    }
}
