//! Split page-structure caches (MMU caches).
//!
//! A PSC at level *L* caches the physical location of the page-table node
//! entered at level *L*, letting a walk skip every level above it. The
//! simulated configuration is the paper's Table 1: a split design with
//! PSCL5 (2 entries, fully associative), PSCL4 (4, fully), PSCL3 (8-entry
//! 2-way), PSCL2 (32-entry 4-way), 2-cycle access.
//!
//! Functionally the simulator only needs *which level the walk may start
//! at*: the node addresses themselves are recomputed from the page table.

use itpx_policy::{Lru, Policy, TlbMeta};
use itpx_types::{Asid, SetGrid, SetMask, TranslationKind};

/// Index bits per page-table level.
const LEVEL_BITS: u32 = 9;

/// Bit position the ASID folds into a namespaced VPN at. 4 KiB VPNs of
/// the simulated 57-bit address space use at most 45 bits, so bits 48..64
/// are free for the 16-bit tag.
const ASID_SHIFT: u32 = 48;

/// Folds an address-space tag into a 4 KiB VPN, namespacing PSC tags per
/// address space: two tenants walking the same virtual page must not share
/// page-table nodes. [`Asid::KERNEL`] (the single-tenant default) maps to
/// the identity, so single-ASID simulations see byte-identical tags.
pub fn namespaced_vpn(vpn4k: u64, asid: Asid) -> u64 {
    debug_assert!(vpn4k < 1 << ASID_SHIFT, "VPN collides with the ASID fold");
    vpn4k | ((asid.0 as u64) << ASID_SHIFT)
}

/// Recovers the address-space tag from a level-`level` PSC tag derived
/// from a namespaced VPN (the fold sits above the VPN bits at every
/// level, so the shift is exact).
pub fn tag_asid(tag: u64, level: u8) -> Asid {
    // itpx-allow: arith-width the shift drops the fold back to bit 0 and no VPN bits sit above it, so the tag fits u16 exactly
    Asid((tag >> (ASID_SHIFT - LEVEL_BITS * (level as u32 - 1))) as u16)
}

/// One set-associative MMU cache covering a single page-table level.
#[derive(Debug)]
pub struct PageStructureCache {
    level: u8,
    set_mask: SetMask,
    tags: SetGrid<Option<u64>>,
    policy: Lru,
}

impl PageStructureCache {
    /// Creates a PSC for `level` with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if `level` is not in `2..=5` or the geometry is degenerate.
    pub fn new(level: u8, sets: usize, ways: usize) -> Self {
        assert!((2..=5).contains(&level), "PSC levels are 2..=5");
        assert!(sets > 0 && ways > 0, "PSC needs sets > 0, ways > 0");
        Self {
            level,
            // Power-of-two set counts are a construction-time invariant:
            // every later lookup indexes with a single mask AND.
            set_mask: SetMask::new(sets),
            tags: SetGrid::new(sets, ways, None),
            policy: Lru::new(sets, ways),
        }
    }

    /// The page-table level this PSC covers.
    pub fn level(&self) -> u8 {
        self.level
    }

    /// Tag for a 4 KiB VPN at this PSC's level: the VPN bits above the
    /// level's index.
    fn tag(&self, vpn4k: u64) -> u64 {
        vpn4k >> (LEVEL_BITS * (self.level as u32 - 1))
    }

    fn set_of(&self, tag: u64) -> usize {
        self.set_mask.set_of(tag)
    }

    fn meta(tag: u64) -> TlbMeta {
        TlbMeta::demand(tag, TranslationKind::Data)
    }

    /// Looks up the node for `vpn4k`, updating recency on hit.
    pub fn lookup(&mut self, vpn4k: u64) -> bool {
        let tag = self.tag(vpn4k);
        let set = self.set_of(tag);
        if let Some(way) = self.tags.row(set).iter().position(|&t| t == Some(tag)) {
            self.policy.on_hit(set, way, &Self::meta(tag));
            true
        } else {
            false
        }
    }

    /// Installs the node for `vpn4k` after a walk resolves it.
    pub fn fill(&mut self, vpn4k: u64) {
        let tag = self.tag(vpn4k);
        self.install_tag(tag);
    }

    /// Installs a pre-computed level tag (shared by [`Self::fill`] and the
    /// warm-state import path).
    fn install_tag(&mut self, tag: u64) {
        let set = self.set_of(tag);
        if self.tags.row(set).contains(&Some(tag)) {
            return;
        }
        let way = match self.tags.row(set).iter().position(|t| t.is_none()) {
            Some(w) => w,
            None => {
                let v = self.policy.victim(set, &Self::meta(tag));
                Policy::<TlbMeta>::on_evict(&mut self.policy, set, v);
                v
            }
        };
        self.tags.row_mut(set)[way] = Some(tag);
        self.policy.on_fill(set, way, &Self::meta(tag));
    }

    /// Whether the node tag for `vpn4k` is resident, without touching
    /// recency (used by the tier-boundary lockstep check).
    pub fn contains_vpn(&self, vpn4k: u64) -> bool {
        let tag = self.tag(vpn4k);
        self.tags.row(self.set_of(tag)).contains(&Some(tag))
    }

    /// Exports resident tags per set in **LRU-first** order, so replaying
    /// them through the fill path reproduces the recency ordering.
    pub fn export_tags(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for set in 0..self.tags.sets() {
            for way in self.policy.stack().iter_lru_to_mru(set) {
                if let Some(tag) = self.tags.row(set)[way] {
                    out.push(tag);
                }
            }
        }
        out
    }

    /// Replaces this PSC's contents with raw level tags (as produced by
    /// [`Self::export_tags`]) — the warm-state import at a tier boundary.
    /// Tags install LRU-first, so the last tag into a set is its MRU.
    pub fn import_tags<I: IntoIterator<Item = u64>>(&mut self, tags: I) {
        for set in 0..self.tags.sets() {
            self.tags.row_mut(set).fill(None);
        }
        for tag in tags {
            self.install_tag(tag);
        }
    }

    /// Invalidates every node cached under `asid`'s namespace (a flushing
    /// context switch). A level tag keeps the ASID fold above its VPN
    /// bits, so [`tag_asid`] recovers the tag's address space exactly,
    /// global entries included.
    pub fn flush_asid(&mut self, asid: Asid) {
        let level = self.level;
        for set in 0..self.tags.sets() {
            for slot in self.tags.row_mut(set) {
                if let Some(tag) = *slot {
                    if tag_asid(tag, level) == asid {
                        *slot = None;
                    }
                }
            }
        }
    }
}

/// The split PSC hierarchy of Table 1.
#[derive(Debug)]
pub struct SplitPscs {
    pscl5: PageStructureCache,
    pscl4: PageStructureCache,
    pscl3: PageStructureCache,
    pscl2: PageStructureCache,
    /// Access latency charged per walk for consulting the PSCs, in cycles.
    pub latency: u64,
}

impl Default for SplitPscs {
    fn default() -> Self {
        Self::asplos25()
    }
}

impl SplitPscs {
    /// The paper's Table 1 configuration.
    pub fn asplos25() -> Self {
        Self {
            pscl5: PageStructureCache::new(5, 1, 2),
            pscl4: PageStructureCache::new(4, 1, 4),
            pscl3: PageStructureCache::new(3, 4, 2),
            pscl2: PageStructureCache::new(2, 8, 4),
            latency: 2,
        }
    }

    /// The deepest level a walk for `vpn4k` can *start at*: checking
    /// PSCL2 first (skipping levels 5–3), then PSCL3, PSCL4, PSCL5. With
    /// no PSC hit the walk starts at the root (level 5).
    ///
    /// `leaf_level` bounds the answer for huge pages: a 2 MiB walk ends at
    /// level 2, so a PSCL2 hit resolves it without memory accesses only in
    /// the sense that just the leaf remains.
    pub fn start_level(&mut self, vpn4k: u64) -> u8 {
        if self.pscl2.lookup(vpn4k) {
            2
        } else if self.pscl3.lookup(vpn4k) {
            3
        } else if self.pscl4.lookup(vpn4k) {
            4
        } else {
            // PSCL5 hit or full miss: either way the walk starts at the
            // root (PSCL5 caches the root node, which is architectural).
            let _ = self.pscl5.lookup(vpn4k);
            5
        }
    }

    /// Fills all PSC levels after a walk that reached `leaf_level`.
    ///
    /// The PSC at level `L` caches the node *entered at* level `L`, learned
    /// by reading the level-`L+1` entry. Walks for both 4 KiB (leaf 1) and
    /// 2 MiB (leaf 2) pages read every entry from the root down to at least
    /// level 2, so every PSC level can be filled in either case.
    pub fn fill(&mut self, vpn4k: u64, leaf_level: u8) {
        debug_assert!(leaf_level <= 2, "leaves live at level 1 or 2");
        self.pscl2.fill(vpn4k);
        self.pscl3.fill(vpn4k);
        self.pscl4.fill(vpn4k);
        self.pscl5.fill(vpn4k);
    }

    /// Snapshots all four levels' resident tags as `[PSCL5, PSCL4, PSCL3,
    /// PSCL2]`, each LRU-first (see [`PageStructureCache::export_tags`]).
    pub fn export_tags(&self) -> [Vec<u64>; 4] {
        [
            self.pscl5.export_tags(),
            self.pscl4.export_tags(),
            self.pscl3.export_tags(),
            self.pscl2.export_tags(),
        ]
    }

    /// Replaces all four levels' contents from an [`Self::export_tags`]
    /// snapshot — the warm-state import at a tier boundary.
    pub fn import_tags(&mut self, tags: [Vec<u64>; 4]) {
        let [t5, t4, t3, t2] = tags;
        self.pscl5.import_tags(t5);
        self.pscl4.import_tags(t4);
        self.pscl3.import_tags(t3);
        self.pscl2.import_tags(t2);
    }

    /// Whether any level holds a node for `vpn4k` without touching
    /// recency (used by the tier-boundary lockstep check).
    pub fn contains_vpn(&self, vpn4k: u64) -> bool {
        self.pscl2.contains_vpn(vpn4k)
            || self.pscl3.contains_vpn(vpn4k)
            || self.pscl4.contains_vpn(vpn4k)
            || self.pscl5.contains_vpn(vpn4k)
    }

    /// Invalidates every level's nodes cached under `asid`'s namespace
    /// (the PSC half of a flushing context switch).
    pub fn flush_asid(&mut self, asid: Asid) {
        self.pscl2.flush_asid(asid);
        self.pscl3.flush_asid(asid);
        self.pscl4.flush_asid(asid);
        self.pscl5.flush_asid(asid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_walk_starts_at_root() {
        let mut p = SplitPscs::asplos25();
        assert_eq!(p.start_level(0x1234), 5);
    }

    #[test]
    fn filled_walk_starts_at_level_2() {
        let mut p = SplitPscs::asplos25();
        p.fill(0x1234, 1);
        assert_eq!(p.start_level(0x1234), 2);
    }

    #[test]
    fn huge_page_walks_fill_all_levels() {
        let mut p = SplitPscs::asplos25();
        p.fill(0x1234, 2); // 2 MiB walk: leaf at level 2
                           // The walk read the level-3 entry, so PSCL2 knows the level-2 node:
                           // the next walk starts at level 2 (where the huge leaf lives).
        assert_eq!(p.start_level(0x1234), 2);
    }

    #[test]
    fn neighbouring_pages_in_same_level2_node_share_pscl2_entry() {
        let mut p = SplitPscs::asplos25();
        p.fill(0x1000, 1);
        // Same level-2 node: vpn4k differing only in the low 9 bits.
        assert_eq!(p.start_level(0x1000 + 5), 2);
        // Different level-2 node.
        assert_eq!(p.start_level(0x1000 + (1 << 9)), 3);
    }

    #[test]
    fn pscl2_capacity_evicts_lru() {
        let mut c = PageStructureCache::new(2, 1, 2);
        c.fill(0);
        c.fill(1 << 9);
        assert!(c.lookup(0));
        c.fill(2 << 9); // evicts 1<<9 (LRU after lookup(0))
        assert!(!c.lookup(1 << 9));
        assert!(c.lookup(0));
        assert!(c.lookup(2 << 9));
    }

    #[test]
    fn duplicate_fill_is_idempotent() {
        let mut c = PageStructureCache::new(3, 2, 2);
        c.fill(7);
        c.fill(7);
        assert!(c.lookup(7));
    }

    #[test]
    fn export_import_roundtrip_preserves_tags_and_recency() {
        let mut src = PageStructureCache::new(2, 1, 2);
        src.fill(0);
        src.fill(1 << 9);
        assert!(src.lookup(0)); // 0 becomes MRU; LRU = 1<<9
        let tags = src.export_tags();
        assert_eq!(tags.len(), 2);

        let mut dst = PageStructureCache::new(2, 1, 2);
        dst.fill(7 << 9); // stale content, must be dropped
        dst.import_tags(tags);
        assert!(!dst.contains_vpn(7 << 9));
        assert!(dst.contains_vpn(0));
        assert!(dst.contains_vpn(1 << 9));
        // Recency carried over: a capacity fill evicts 1<<9 (LRU), not 0.
        dst.fill(2 << 9);
        assert!(dst.contains_vpn(0));
        assert!(!dst.contains_vpn(1 << 9));
    }

    #[test]
    fn kernel_namespace_is_the_identity() {
        assert_eq!(namespaced_vpn(0x1234, Asid::KERNEL), 0x1234);
        assert_ne!(namespaced_vpn(0x1234, Asid(1)), 0x1234);
        assert_ne!(
            namespaced_vpn(0x1234, Asid(1)),
            namespaced_vpn(0x1234, Asid(2))
        );
    }

    #[test]
    fn namespaced_tenants_do_not_share_nodes() {
        let mut p = SplitPscs::asplos25();
        p.fill(namespaced_vpn(0x1234, Asid(1)), 1);
        assert_eq!(p.start_level(namespaced_vpn(0x1234, Asid(1))), 2);
        assert_eq!(p.start_level(namespaced_vpn(0x1234, Asid(2))), 5);
    }

    #[test]
    fn flush_asid_clears_only_that_namespace() {
        let mut p = SplitPscs::asplos25();
        p.fill(namespaced_vpn(0x1234, Asid(1)), 1);
        p.fill(namespaced_vpn(0x5678, Asid(2)), 1);
        p.fill(namespaced_vpn(0x9abc, Asid::GLOBAL), 1);
        p.flush_asid(Asid(1));
        assert!(!p.contains_vpn(namespaced_vpn(0x1234, Asid(1))));
        assert!(p.contains_vpn(namespaced_vpn(0x5678, Asid(2))));
        assert!(p.contains_vpn(namespaced_vpn(0x9abc, Asid::GLOBAL)));
        // KERNEL (0) flush of an empty namespace is a no-op for others.
        p.flush_asid(Asid::KERNEL);
        assert!(p.contains_vpn(namespaced_vpn(0x5678, Asid(2))));
    }

    #[test]
    fn split_pscs_roundtrip_restores_start_levels() {
        let mut src = SplitPscs::asplos25();
        src.fill(0x1234, 1);
        src.fill(0x9_0000, 1);
        let snapshot = src.export_tags();

        let mut dst = SplitPscs::asplos25();
        dst.fill(0xdead_0000, 1); // stale
        dst.import_tags(snapshot);
        assert_eq!(dst.start_level(0x1234), 2);
        assert_eq!(dst.start_level(0x9_0000), 2);
        assert!(!dst.pscl2.contains_vpn(0xdead_0000));
    }
}
