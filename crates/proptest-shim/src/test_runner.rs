//! The `proptest!` runner, its config, and the assertion macros.

/// Per-block runner configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A failed property: carries the formatted assertion message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure from a message (mirror of `TestCaseError::fail`).
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Declares property tests. Supports the subset of the real macro's grammar
/// this workspace uses: an optional `#![proptest_config(..)]` header and
/// `#[test] fn name(arg in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@runner ($cfg) $($rest)*);
    };
    (@runner ($cfg:expr) $(
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::from_name(
                        concat!(module_path!(), "::", stringify!($name)),
                        case as u64,
                    );
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {case} of {}: {}\ninputs: {:#?}",
                            stringify!($name),
                            e,
                            ($(&$arg,)+)
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@runner ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property, failing the case (not panicking)
/// so the runner can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?} == {:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?} == {:?}`: {}", l, r, format!($($fmt)+)
        );
    }};
}

/// Asserts two values differ inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?} != {:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?} != {:?}`: {}", l, r, format!($($fmt)+)
        );
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn helper(x: u64) -> Result<(), TestCaseError> {
        prop_assert!(x < u64::MAX, "bound");
        prop_assert_eq!(x, x);
        prop_assert_ne!(x, x.wrapping_add(1));
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn runner_binds_and_questions(x in 0u64..100, flag in any::<bool>()) {
            prop_assert!(x < 100);
            let _ = flag;
            helper(x)?;
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(v in crate::prop::collection::vec(0u8..4, 1..10)) {
            prop_assert!(!v.is_empty() && v.len() < 10);
            prop_assert!(v.iter().all(|&b| b < 4));
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_report_inputs() {
        proptest! {
            #[allow(unused)]
            fn inner(x in 0u64..10) {
                prop_assert!(x > 100, "always fails");
            }
        }
        inner();
    }
}
