//! Value-generation strategies: ranges, tuples, `any`, `vec`, `prop_map`.

use crate::TestRng;
use std::ops::{Range, RangeInclusive};

/// Generates values of an associated type from a [`TestRng`].
///
/// Unlike real proptest there is no shrinking tree; a strategy is just a
/// deterministic sampler.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the produced value through `f` (mirror of `Strategy::prop_map`).
    fn prop_map<O: std::fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: std::fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<V: std::fmt::Debug> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

impl<V: std::fmt::Debug> Strategy for Box<dyn Strategy<Value = V> + Send + Sync> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

/// Boxes a strategy for use in heterogeneous collections (`prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Uniform choice between boxed strategies (backs `prop_oneof!`).
pub struct OneOf<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> std::fmt::Debug for OneOf<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "OneOf({} arms)", self.arms.len())
    }
}

impl<V: std::fmt::Debug> OneOf<V> {
    /// Builds the union; panics if no arms are given.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<V: std::fmt::Debug> Strategy for OneOf<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                let draw = if span == u64::MAX { rng.next_u64() } else { rng.below(span + 1) };
                (lo + draw as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical full-domain strategy (mirror of
/// `proptest::arbitrary::Arbitrary`, sampling only).
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// Full-domain strategy for `T` (mirror of `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Length specification for [`vec()`]: a fixed size or a (half-open or
/// inclusive) range of sizes.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        Self {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Strategy for vectors whose elements are drawn from `element` and whose
/// length is drawn from `size` (mirror of `proptest::collection::vec`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi_inclusive - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span + 1) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..500 {
            let v = (3usize..9).sample(&mut rng);
            assert!((3..9).contains(&v));
            let f = (-0.5f64..2.0).sample(&mut rng);
            assert!((-0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_len_obeys_size_range() {
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let v = vec(0u64..10, 1..5).sample(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let s = vec((0u64..100, any::<bool>()), 1..20);
        let a = s.sample(&mut TestRng::from_name("t", 3));
        let b = s.sample(&mut TestRng::from_name("t", 3));
        assert_eq!(a, b);
    }
}
