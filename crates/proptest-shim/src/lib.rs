//! A deterministic, dependency-free subset of the `proptest` API.
//!
//! The build environment for this repository has no network access, so the
//! real `proptest` crate cannot be fetched from crates.io. This shim
//! implements exactly the surface the workspace's property suites use —
//! `proptest!`, `prop_oneof!`, `prop_assert!`/`prop_assert_eq!`, range and
//! tuple strategies, `prop::collection::vec`, `any::<T>()`, `Strategy::
//! prop_map` — on top of a seeded SplitMix64 generator, so every run of the
//! suite explores the same cases. No shrinking is performed: on failure the
//! offending inputs are printed verbatim.
//!
//! The seed for each test is derived from the test's name (FNV-1a), so
//! adding cases to one test does not perturb another.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// Everything the property suites import.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Mirror of `proptest::prop` (only `collection` is provided).
pub mod prop {
    /// Mirror of `proptest::collection`.
    pub mod collection {
        pub use crate::strategy::vec;
    }
}

/// Deterministic generator state used by strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    x: u64,
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    pub fn new(seed: u64) -> Self {
        Self {
            x: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Seeds a generator from a test name so suites are independent.
    pub fn from_name(name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self::new(h ^ case.wrapping_mul(0x2545_f491_4f6c_dd1d))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.x = self.x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
