//! Dispatch-cost microbenchmarks: the same policy driven through a
//! `Box<dyn Policy>` virtual call vs its `PolicyEngine` enum variant.
//!
//! Each iteration performs [`OPS_PER_ITER`] fill+hit+victim rounds (the
//! `policy_ops` loop body), batched so the measurement amortizes timer
//! overhead; divide the reported time by `OPS_PER_ITER` for the per-round
//! cost. `dyn/...` and `enum/...` pairs differ only in the dispatch
//! mechanism. The enum path is what the simulated machine runs; the dyn
//! path is what it ran before the engine refactor (and what out-of-tree
//! policies still use via the `Dyn` variant).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use itpx_core::{Itp, ItpParams, Xptp, XptpParams};
use itpx_policy::{CacheMeta, CachePolicyEngine, Lru, Policy, Srrip, TlbMeta, TlbPolicyEngine};
use itpx_types::{FillClass, TranslationKind};
use std::hint::black_box;

/// STLB geometry of Table 1.
const TLB_SETS: usize = 128;
const TLB_WAYS: usize = 12;
/// L2C geometry of Table 1.
const CACHE_SETS: usize = 1024;
const CACHE_WAYS: usize = 8;
/// Policy operations (fill + hit + victim) per timed iteration.
const OPS_PER_ITER: u64 = 10_000;

fn drive_cache(c: &mut Criterion, name: &str, mut p: impl Policy<CacheMeta>) {
    let mut g = c.benchmark_group("dispatch");
    g.throughput(Throughput::Elements(OPS_PER_ITER));
    let mut i = 0u64;
    g.bench_function(name, |b| {
        b.iter(|| {
            for _ in 0..OPS_PER_ITER {
                i = i.wrapping_add(1);
                let set = (i as usize) % CACHE_SETS;
                let way = (i as usize) % CACHE_WAYS;
                let fill = if i.is_multiple_of(5) {
                    FillClass::DataPte
                } else {
                    FillClass::DataPayload
                };
                let m = CacheMeta::demand(i, fill);
                p.on_fill(set, way, &m);
                p.on_hit(set, (way + 1) % CACHE_WAYS, &m);
                black_box(p.victim(set, &m));
            }
        })
    });
    g.finish();
}

fn drive_tlb(c: &mut Criterion, name: &str, mut p: impl Policy<TlbMeta>) {
    let mut g = c.benchmark_group("dispatch");
    g.throughput(Throughput::Elements(OPS_PER_ITER));
    let mut i = 0u64;
    g.bench_function(name, |b| {
        b.iter(|| {
            for _ in 0..OPS_PER_ITER {
                i = i.wrapping_add(1);
                let set = (i as usize) % TLB_SETS;
                let way = (i as usize) % TLB_WAYS;
                let kind = if i.is_multiple_of(3) {
                    TranslationKind::Instruction
                } else {
                    TranslationKind::Data
                };
                let m = TlbMeta::demand(i, kind);
                p.on_fill(set, way, &m);
                p.on_hit(set, (way + 1) % TLB_WAYS, &m);
                black_box(p.victim(set, &m));
            }
        })
    });
    g.finish();
}

fn benches(c: &mut Criterion) {
    // TLB policies: baseline LRU and the paper's iTP.
    let lru_tlb = || Lru::new(TLB_SETS, TLB_WAYS);
    drive_tlb(
        c,
        "tlb-lru/dyn",
        Box::new(lru_tlb()) as Box<dyn Policy<TlbMeta>>,
    );
    drive_tlb(c, "tlb-lru/enum", TlbPolicyEngine::from(lru_tlb()));
    let itp = || Itp::new(TLB_SETS, TLB_WAYS, ItpParams::default());
    drive_tlb(c, "itp/dyn", Box::new(itp()) as Box<dyn Policy<TlbMeta>>);
    drive_tlb(c, "itp/enum", TlbPolicyEngine::from(itp()));

    // Cache policies: SRRIP (the cheapest comparator, so dispatch overhead
    // is proportionally largest) and the paper's xPTP.
    let srrip = || Srrip::new(CACHE_SETS, CACHE_WAYS);
    drive_cache(
        c,
        "srrip/dyn",
        Box::new(srrip()) as Box<dyn Policy<CacheMeta>>,
    );
    drive_cache(c, "srrip/enum", CachePolicyEngine::from(srrip()));
    let xptp = || Xptp::new(CACHE_SETS, CACHE_WAYS, XptpParams::default());
    drive_cache(
        c,
        "xptp/dyn",
        Box::new(xptp()) as Box<dyn Policy<CacheMeta>>,
    );
    drive_cache(c, "xptp/enum", CachePolicyEngine::from(xptp()));
}

criterion_group!(dispatch, benches);
criterion_main!(dispatch);
