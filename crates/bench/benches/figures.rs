//! End-to-end benchmarks: the cost of regenerating each figure family at
//! a miniature scale (these gate performance regressions of the whole
//! simulator; the real reproductions run via the fig* binaries).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use itpx_core::Preset;
use itpx_cpu::{Simulation, SystemConfig};
use itpx_trace::{smt_suite, WorkloadSpec};
use std::hint::black_box;

const INSTR: u64 = 20_000;
const WARMUP: u64 = 5_000;

fn workload(seed: u64) -> WorkloadSpec {
    WorkloadSpec::server_like(seed)
        .instructions(INSTR)
        .warmup(WARMUP)
}

fn benches(c: &mut Criterion) {
    let cfg = SystemConfig::asplos25();
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.throughput(Throughput::Elements(INSTR + WARMUP));

    // Figure 8a family: one single-thread policy run.
    for preset in [Preset::Lru, Preset::Itp, Preset::ItpXptp, Preset::Tdrrip] {
        g.bench_function(format!("fig08a/{preset}"), |b| {
            b.iter(|| black_box(Simulation::single_thread(&cfg, preset, &workload(1)).run()))
        });
    }

    // Figure 8b family: one SMT run.
    let mut pair = smt_suite(1).remove(0);
    pair.a = pair.a.instructions(INSTR).warmup(WARMUP);
    pair.b = pair.b.instructions(INSTR).warmup(WARMUP);
    g.bench_function("fig08b/iTP+xPTP", |b| {
        b.iter(|| black_box(Simulation::smt(&cfg, Preset::ItpXptp, &pair).run()))
    });

    // Figure 1 family: ITLB sweep point.
    let small = cfg.with_itlb_entries(8);
    g.bench_function("fig01/itlb8", |b| {
        b.iter(|| black_box(Simulation::single_thread(&small, Preset::Lru, &workload(2)).run()))
    });

    // Figure 13 family: huge-page run.
    let huge = cfg.with_huge_pages(itpx_vm::HugePagePolicy::uniform(0.5, 3));
    g.bench_function("fig13/huge50", |b| {
        b.iter(|| black_box(Simulation::single_thread(&huge, Preset::ItpXptp, &workload(3)).run()))
    });

    // Figure 14 family: split STLB run.
    let split = cfg.with_split_stlb(true);
    g.bench_function("fig14/split", |b| {
        b.iter(|| black_box(Simulation::single_thread(&split, Preset::Lru, &workload(4)).run()))
    });
    g.finish();
}

criterion_group!(figures, benches);
criterion_main!(figures);
