//! Substrate throughput benchmarks: TLB lookups, cache probes, page
//! walks, and trace generation.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use itpx_mem::{Cache, CacheConfig, Probe};
use itpx_policy::{CacheMeta, Lru};
use itpx_trace::{TraceGenerator, WorkloadSpec};
use itpx_types::{Asid, FillClass, PageSize, PhysAddr, ThreadId, TranslationKind, VirtAddr};
use itpx_vm::page_table::{HugePagePolicy, PageTable};
use itpx_vm::psc::SplitPscs;
use itpx_vm::tlb::{Tlb, TlbConfig};
use itpx_vm::walker::{PageWalker, PteMemory};
use std::hint::black_box;

struct FlatMem;
impl PteMemory for FlatMem {
    fn pte_access(&mut self, _pa: PhysAddr, _k: TranslationKind, now: u64) -> u64 {
        now + 20
    }
}

fn benches(c: &mut Criterion) {
    // TLB lookup/fill cycle.
    let cfg = TlbConfig {
        sets: 128,
        ways: 12,
        latency: 8,
        mshr_entries: 16,
    };
    let mut tlb = Tlb::new(cfg, Lru::new(128, 12));
    for i in 0..1536u64 {
        tlb.fill(
            i,
            PageSize::Base4K,
            PhysAddr::new(i << 12),
            TranslationKind::Data,
            Asid::GLOBAL,
            0,
            ThreadId(0),
            1,
            0,
        );
    }
    let mut i = 0u64;
    let mut g = c.benchmark_group("structures");
    g.throughput(Throughput::Elements(1));
    g.bench_function("stlb_lookup", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(tlb.lookup(
                VirtAddr::new((i % 4096) << 12),
                TranslationKind::Data,
                0,
                ThreadId(0),
                i,
            ))
        })
    });

    // Cache probe/fill cycle.
    let mut cache = Cache::new(
        CacheConfig {
            sets: 1024,
            ways: 8,
            latency: 5,
            mshr_entries: 32,
        },
        Lru::new(1024, 8),
    );
    let mut j = 0u64;
    g.bench_function("l2c_probe_fill", |b| {
        b.iter(|| {
            j = j.wrapping_add(17);
            let m = CacheMeta::demand(j % 65536, FillClass::DataPayload);
            if let Probe::Miss(start) = cache.probe(&m, j, true) {
                cache.fill(&m, start, start + 30, true);
            }
        })
    });

    // Full page walk against a flat memory.
    let mut pt = PageTable::new(HugePagePolicy::none(), 1);
    let mut pscs = SplitPscs::asplos25();
    let mut walker = PageWalker::new(4);
    let mut k = 0u64;
    g.bench_function("page_walk", |b| {
        b.iter(|| {
            k = k.wrapping_add(1);
            let tr = pt.translate(VirtAddr::new((k % 100_000) << 12), TranslationKind::Data);
            black_box(walker.walk(&tr, TranslationKind::Data, &mut pscs, FlatMem, k))
        })
    });

    // Trace generation throughput.
    let spec = WorkloadSpec::server_like(1);
    let mut generator = TraceGenerator::new(&spec);
    g.bench_function("trace_gen", |b| b.iter(|| black_box(generator.next())));
    g.finish();
}

criterion_group!(structures, benches);
criterion_main!(structures);
