//! Microbenchmarks: per-access cost of every replacement policy.
//!
//! The paper argues iTP/xPTP are implementable with trivial hardware; the
//! software analogue is that their bookkeeping should cost no more than
//! the baselines'. One iteration = one fill + one hit + one victim choice.

use criterion::{criterion_group, criterion_main, Criterion};
use itpx_core::{AdaptiveXptp, Itp, ItpParams, Xptp, XptpParams, XptpSwitch};
use itpx_policy::*;
use itpx_types::{FillClass, TranslationKind};
use std::hint::black_box;

const SETS: usize = 128;
const WAYS: usize = 12;
/// Geometry of the benchmarked L2C-like cache policies (Table 1's L2C).
const CACHE_SETS: usize = 1024;
const CACHE_WAYS: usize = 8;

fn bench_cache_policy(c: &mut Criterion, name: &str, mut p: Box<dyn Policy<CacheMeta>>) {
    let mut i = 0u64;
    c.bench_function(&format!("cache/{name}"), |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            let set = (i as usize) % CACHE_SETS;
            let way = (i as usize) % CACHE_WAYS;
            let fill = if i.is_multiple_of(5) {
                FillClass::DataPte
            } else {
                FillClass::DataPayload
            };
            let m = CacheMeta::demand(i, fill);
            p.on_fill(set, way, &m);
            p.on_hit(set, (way + 1) % CACHE_WAYS, &m);
            black_box(p.victim(set, &m));
        })
    });
}

fn bench_tlb_policy(c: &mut Criterion, name: &str, mut p: Box<dyn Policy<TlbMeta>>) {
    let mut i = 0u64;
    c.bench_function(&format!("tlb/{name}"), |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            let set = (i as usize) % SETS;
            let way = (i as usize) % WAYS;
            let kind = if i.is_multiple_of(3) {
                TranslationKind::Instruction
            } else {
                TranslationKind::Data
            };
            let m = TlbMeta::demand(i, kind);
            p.on_fill(set, way, &m);
            p.on_hit(set, (way + 1) % WAYS, &m);
            black_box(p.victim(set, &m));
        })
    });
}

fn benches(c: &mut Criterion) {
    bench_tlb_policy(c, "lru", Box::new(Lru::new(SETS, WAYS)));
    bench_tlb_policy(
        c,
        "itp",
        Box::new(Itp::new(SETS, WAYS, ItpParams::default())),
    );
    bench_tlb_policy(c, "chirp", Box::new(Chirp::new(SETS, WAYS)));
    bench_tlb_policy(
        c,
        "prob-keep-instr",
        Box::new(ProbKeepInstrLru::new(SETS, WAYS, 0.8, 1)),
    );

    bench_cache_policy(c, "lru", Box::new(Lru::new(1024, 8)));
    bench_cache_policy(
        c,
        "xptp",
        Box::new(Xptp::new(1024, 8, XptpParams::default())),
    );
    bench_cache_policy(
        c,
        "adaptive-xptp",
        Box::new(AdaptiveXptp::new(
            1024,
            8,
            XptpParams::default(),
            XptpSwitch::new(),
        )),
    );
    bench_cache_policy(c, "ptp", Box::new(Ptp::new(1024, 8)));
    bench_cache_policy(c, "tdrrip", Box::new(Tdrrip::new(1024, 8, 7)));
    bench_cache_policy(c, "ship", Box::new(Ship::new(1024, 8)));
    bench_cache_policy(c, "mockingjay", Box::new(Mockingjay::new(1024, 8)));
    bench_cache_policy(c, "drrip", Box::new(Drrip::new(1024, 8, 9)));
}

criterion_group!(policy_ops, benches);
criterion_main!(policy_ops);
