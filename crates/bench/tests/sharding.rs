//! The sharded executor: cooperating campaigns over one shared store
//! must produce complete, identical result sets while splitting the
//! execution work between them.

use itpx_bench::{Campaign, Executor, RunScale, SimCache, SimRequest, WorkQueue};
use itpx_core::Preset;
use itpx_cpu::SystemConfig;
use itpx_trace::WorkloadSpec;
use std::path::PathBuf;

fn tiny_scale() -> RunScale {
    RunScale {
        workloads: 2,
        smt_pairs: 1,
        instructions: 2_000,
        warmup: 500,
        host_threads: 1,
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("itpx-shard-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn batch() -> Vec<SimRequest> {
    let config = SystemConfig::asplos25();
    let mut requests = Vec::new();
    for preset in [Preset::Lru, Preset::Itp, Preset::ItpXptp] {
        for seed in 0..3 {
            let w = WorkloadSpec::server_like(seed)
                .instructions(2_000)
                .warmup(500);
            requests.push(SimRequest::single(&config, preset, &w));
        }
    }
    requests
}

/// Two sharded campaigns (one per thread, modelling two processes)
/// resolve the same batch over one store directory: both get the full
/// result set, identical to a plain in-process run, while each executes
/// only part of the work.
#[test]
fn two_shards_merge_to_the_in_process_result() {
    let dir = temp_dir("merge");
    let requests = batch();
    let unique: std::collections::BTreeSet<u64> = requests.iter().map(|r| r.key()).collect();

    let reference = Campaign::new(tiny_scale(), SimCache::disabled()).run_batch(batch());

    // The partition is identical on both shards by construction; the
    // barrier only aligns the cache-lookup phase so neither shard sees
    // the other's results as warm hits and the executed-count split is
    // exact.
    let barrier = std::sync::Barrier::new(2);
    let (out_a, out_b, exec_a, exec_b) = std::thread::scope(|scope| {
        let spawn_shard = |index: u64| {
            let dir = dir.clone();
            let barrier = &barrier;
            scope.spawn(move || {
                let campaign = Campaign::new(tiny_scale(), SimCache::new(Some(dir)))
                    .with_executor(Executor::Sharded { shards: 2, index });
                barrier.wait();
                let out = campaign.run_batch(batch());
                (out, campaign.executed())
            })
        };
        let a = spawn_shard(0);
        let b = spawn_shard(1);
        let (out_a, exec_a) = a.join().expect("shard 0");
        let (out_b, exec_b) = b.join().expect("shard 1");
        (out_a, out_b, exec_a, exec_b)
    });

    assert_eq!(out_a, reference, "shard 0 diverges from in-process run");
    assert_eq!(out_b, reference, "shard 1 diverges from in-process run");
    // The work was actually split: together the shards executed each
    // unique simulation exactly once, and neither ran the whole batch.
    assert_eq!(
        exec_a + exec_b,
        unique.len() as u64,
        "each unique key must execute exactly once across the fleet"
    );
    assert!(exec_a < unique.len() as u64, "shard 0 ran everything");
    assert!(exec_b < unique.len() as u64, "shard 1 ran everything");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A lone shard whose peer never shows up self-heals: after its poll
/// patience runs out it executes the peer's chunk locally and still
/// returns the complete result set — wasted work, never a wrong or
/// partial report.
#[test]
fn orphan_shard_self_heals_after_waiting() {
    let dir = temp_dir("orphan");
    let reference = Campaign::new(tiny_scale(), SimCache::disabled()).run_batch(batch());

    let orphan = Campaign::new(tiny_scale(), SimCache::new(Some(dir.clone())))
        .with_executor(Executor::Sharded {
            shards: 2,
            index: 0,
        })
        .with_poll_rounds(2);
    let out = orphan.run_batch(batch());
    assert_eq!(out, reference, "self-healed run diverges");
    let unique: std::collections::BTreeSet<u64> = batch().iter().map(|r| r.key()).collect();
    assert_eq!(
        orphan.executed(),
        unique.len() as u64,
        "the orphan must take over the missing peer's whole chunk"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression: warm keys must not shift the partition. Shards drift
/// apart across a figure sequence, so one shard's dedup pass can see
/// results its peer already published; if the chunk map were computed
/// over the *misses* instead of the full batch, the shards would derive
/// conflicting partitions — a shard whose own chunk is warm would claim
/// part of its peer's chunk, and other keys would be claimed by nobody
/// until self-heal. Here shard 0's entire chunk is pre-warmed: it must
/// execute nothing and still return the full set, while shard 1 runs
/// exactly the cold chunk.
#[test]
fn warm_keys_do_not_shift_the_partition() {
    let dir = temp_dir("drift");
    let requests = batch();
    let keys: Vec<u64> = requests.iter().map(|r| r.key()).collect();
    let queue = WorkQueue::new(requests.into_iter().map(|r| (r.key(), r)).collect());
    let chunk0: std::collections::BTreeSet<u64> =
        queue.shard(2, 0).into_iter().map(|i| keys[i]).collect();
    assert!(!chunk0.is_empty() && chunk0.len() < keys.len());

    // Pre-warm exactly shard 0's chunk, as a peer that raced ahead would.
    let seeder = Campaign::new(tiny_scale(), SimCache::new(Some(dir.clone())));
    seeder.run_batch(
        batch()
            .into_iter()
            .filter(|r| chunk0.contains(&r.key()))
            .collect(),
    );

    let reference = Campaign::new(tiny_scale(), SimCache::disabled()).run_batch(batch());
    let barrier = std::sync::Barrier::new(2);
    let (out_a, out_b, exec_a, exec_b) = std::thread::scope(|scope| {
        let spawn_shard = |index: u64| {
            let dir = dir.clone();
            let barrier = &barrier;
            scope.spawn(move || {
                let campaign = Campaign::new(tiny_scale(), SimCache::new(Some(dir)))
                    .with_executor(Executor::Sharded { shards: 2, index });
                barrier.wait();
                let out = campaign.run_batch(batch());
                (out, campaign.executed())
            })
        };
        let a = spawn_shard(0);
        let b = spawn_shard(1);
        let (out_a, exec_a) = a.join().expect("shard 0");
        let (out_b, exec_b) = b.join().expect("shard 1");
        (out_a, out_b, exec_a, exec_b)
    });

    assert_eq!(out_a, reference, "warm shard diverges");
    assert_eq!(out_b, reference, "cold shard diverges");
    assert_eq!(
        exec_a, 0,
        "shard 0's chunk was warm; it must execute nothing"
    );
    assert_eq!(
        exec_b,
        (keys.len() - chunk0.len()) as u64,
        "shard 1 must run exactly the cold chunk"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A shard arriving at a fully warm store executes nothing at all.
#[test]
fn warm_store_means_no_shard_executes() {
    let dir = temp_dir("warm");
    let seeder = Campaign::new(tiny_scale(), SimCache::new(Some(dir.clone())));
    let reference = seeder.run_batch(batch());

    let shard = Campaign::new(tiny_scale(), SimCache::new(Some(dir.clone()))).with_executor(
        Executor::Sharded {
            shards: 2,
            index: 1,
        },
    );
    let out = shard.run_batch(batch());
    assert_eq!(out, reference);
    assert_eq!(shard.executed(), 0, "warm store means nothing executes");
    let _ = std::fs::remove_dir_all(&dir);
}
