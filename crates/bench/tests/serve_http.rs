//! End-to-end exercise of the `itpx-serve` HTTP layer: raw TCP client,
//! real campaign behind it, warm requests byte-identical to cold ones.

use itpx_bench::{serve, Campaign, RunScale, SimCache};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;

fn tiny_scale() -> RunScale {
    RunScale {
        workloads: 2,
        smt_pairs: 1,
        instructions: 2_000,
        warmup: 500,
        host_threads: 1,
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("itpx-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One blocking GET over a fresh connection; returns (status, body).
fn get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let request = format!("GET {path} HTTP/1.1\r\nHost: itpx\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes()).expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let body = response
        .split_once("\r\n\r\n")
        .expect("header/body split")
        .1
        .to_string();
    (status, body)
}

#[test]
fn server_serves_figures_sims_and_metrics() {
    let dir = temp_dir("e2e");
    let campaign = Arc::new(Campaign::new(
        tiny_scale(),
        SimCache::new(Some(dir.clone())),
    ));
    // Port 0: the OS picks a free port, the handle reports it.
    let server = serve::start("127.0.0.1:0", campaign, 2).expect("bind");
    let addr = server.addr();

    let (status, body) = get(addr, "/healthz");
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    let (status, body) = get(addr, "/figures");
    assert_eq!(status, 200);
    assert!(body.lines().any(|l| l == "fig01"), "fig01 missing: {body}");

    let (status, body) = get(addr, "/figure/not-a-figure");
    assert_eq!(status, 404);
    assert!(body.contains("unknown figure"));

    // Cold then warm: the warm body must be byte-identical (the whole
    // point of serving from the store).
    let (status, cold) = get(addr, "/figure/fig02");
    assert_eq!(status, 200, "cold fig02 failed: {cold}");
    assert!(cold.contains("Figure 2"), "unexpected report: {cold}");
    let (status, warm) = get(addr, "/figure/fig02");
    assert_eq!(status, 200);
    assert_eq!(warm, cold, "warm body must be byte-identical to cold");

    // A single simulation, addressable by preset and workload.
    let (status, sim) = get(addr, "/sim?preset=itpxptp&workload=server:1");
    assert_eq!(status, 200, "sim failed: {sim}");
    assert!(sim.contains("preset: iTP+xPTP"), "sim body: {sim}");
    assert!(sim.contains("ipc:"), "sim body: {sim}");
    let (status, sim_again) = get(addr, "/sim?preset=itpxptp&workload=server:1");
    assert_eq!(status, 200);
    assert_eq!(sim_again, sim, "warm sim must be byte-identical");
    let (status, bad) = get(addr, "/sim?preset=bogus&workload=server:1");
    assert_eq!(status, 400, "bogus preset must 400: {bad}");

    // Metrics reflect everything above.
    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(metrics.contains("itpx_store_hits"), "metrics: {metrics}");
    assert!(metrics.contains("itpx_store_misses"), "metrics: {metrics}");
    assert!(
        metrics.contains("itpx_http_queue_depth"),
        "metrics: {metrics}"
    );
    assert!(
        metrics.contains("itpx_figure_latency_ms_bucket{figure=\"fig02\""),
        "fig02 latency histogram missing: {metrics}"
    );
    assert!(
        metrics.contains("itpx_figure_latency_ms_count{figure=\"fig02\"} 2"),
        "fig02 must have been built twice: {metrics}"
    );

    // Non-GET methods are rejected, not crashed on.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"POST /healthz HTTP/1.1\r\nHost: itpx\r\n\r\n")
        .expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    assert!(response.starts_with("HTTP/1.1 405"), "got: {response}");

    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}
