//! Non-default chain depths through the campaign engine: 2-level and
//! 4-level hierarchies must build, simulate, report, and memoize — the
//! level-chain refactor's acceptance path.

use itpx_bench::experiments::depth_sweep;
use itpx_bench::{Campaign, RunScale, SimCache, SimRequest};
use itpx_core::Preset;
use itpx_cpu::SystemConfig;
use itpx_mem::HierarchyConfig;
use itpx_trace::WorkloadSpec;
use itpx_types::LevelId;
use std::path::PathBuf;

fn tiny_scale() -> RunScale {
    RunScale {
        workloads: 2,
        smt_pairs: 1,
        instructions: 6_000,
        warmup: 1_500,
        host_threads: 2,
    }
}

fn config_with(hierarchy: HierarchyConfig) -> SystemConfig {
    SystemConfig {
        hierarchy,
        ..SystemConfig::asplos25()
    }
}

fn workload(seed: u64) -> WorkloadSpec {
    WorkloadSpec::server_like(seed)
        .instructions(6_000)
        .warmup(1_500)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("itpx-depth-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn shallow_and_deep_chains_simulate_and_report() {
    let campaign = Campaign::new(tiny_scale(), SimCache::new(None));
    for (hierarchy, has_llc, has_l3) in [
        (HierarchyConfig::asplos25_no_llc(), false, false),
        (HierarchyConfig::asplos25_deep(), true, true),
    ] {
        let config = config_with(hierarchy);
        let out = campaign.run_one(SimRequest::single(&config, Preset::ItpXptp, &workload(3)));
        assert!(out.ipc() > 0.0, "chain simulates");
        assert!(out.l2c.accesses() > 0, "L2C reports through the chain");
        let llc_report = out.cache_levels.iter().any(|l| l.id == LevelId::Llc);
        let l3_report = out.cache_levels.iter().any(|l| l.id == LevelId::L3);
        assert_eq!(llc_report, has_llc, "LLC presence matches the chain");
        assert_eq!(l3_report, has_l3, "L3 presence matches the chain");
        if !has_llc {
            assert_eq!(
                out.llc.accesses(),
                0,
                "a no-LLC chain reports empty LLC stats"
            );
        }
    }
}

#[test]
fn depth_variants_key_distinctly_and_hit_on_warm_rerun() {
    let dir = temp_dir("warm");
    let scale = tiny_scale();
    let requests = || {
        [
            HierarchyConfig::asplos25_no_llc(),
            HierarchyConfig::asplos25(),
            HierarchyConfig::asplos25_deep(),
        ]
        .into_iter()
        .map(|h| SimRequest::single(&config_with(h), Preset::Lru, &workload(5)))
        .collect::<Vec<_>>()
    };

    let cold = Campaign::new(scale, SimCache::new(Some(dir.clone())));
    let first = cold.run_batch(requests());
    // Three chain depths, one workload: three distinct keys, all misses.
    assert_eq!((cold.cache().hits(), cold.cache().misses()), (0, 3));
    assert_ne!(first[0], first[1], "depth changes the simulated result");

    // A fresh campaign (fresh process, conceptually) over the same disk
    // cache serves every request warm.
    let warm = Campaign::new(tiny_scale(), SimCache::new(Some(dir.clone())));
    let second = warm.run_batch(requests());
    assert_eq!((warm.cache().hits(), warm.cache().misses()), (3, 0));
    assert_eq!(first, second, "cached results are bit-identical");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn depth_sweep_experiment_covers_the_grid() {
    let scale = RunScale {
        workloads: 1,
        instructions: 4_000,
        warmup: 1_000,
        ..tiny_scale()
    };
    let campaign = Campaign::new(scale, SimCache::new(None));
    let cells = depth_sweep::run(&campaign, campaign.scale());
    assert_eq!(
        cells.len(),
        depth_sweep::CHAINS.len() * depth_sweep::L2C_SETS.len(),
        "one cell per (chain, L2C size) point"
    );
    for cell in &cells {
        assert!(
            cell.baseline_l2c_mpki.is_finite() && cell.geomean_pct.is_finite(),
            "cell {cell:?} must report finite numbers"
        );
    }
    // The whole grid shares its per-config LRU baselines with nothing,
    // but within the batch each (config, preset, workload) simulates
    // exactly once.
    let table = depth_sweep::format_cells(&cells);
    assert!(table.contains("2-level") && table.contains("4-level"));
}
