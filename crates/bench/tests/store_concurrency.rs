//! Concurrency and crash-safety properties of the segmented store.
//!
//! The store's contract is that any number of reader processes may share
//! `target/simcache` with concurrent writers, and that nothing a writer
//! can do — including dying mid-append — ever corrupts a served result:
//! damage degrades to a cache miss, and a later insert heals it.

use itpx_bench::{SimCache, StoreConfig};
use itpx_core::Preset;
use itpx_cpu::{Simulation, SimulationOutput, SystemConfig};
use itpx_trace::WorkloadSpec;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};

/// One small real output; the store treats keys as opaque, so every
/// test inserts this same payload under many synthetic keys.
fn sample_output() -> SimulationOutput {
    let w = WorkloadSpec::server_like(5).instructions(2_000).warmup(500);
    Simulation::single_thread(&SystemConfig::asplos25(), Preset::Lru, &w).run()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("itpx-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Readers racing a writer: every lookup observes either a miss or the
/// exact inserted output, never a torn or wrong result.
#[test]
fn parallel_readers_race_a_writer_without_torn_reads() {
    let dir = temp_dir("race");
    let out = sample_output();
    const KEYS: u64 = 64;

    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let writer = {
            let dir = dir.clone();
            let out = out.clone();
            let done = &done;
            scope.spawn(move || {
                let cache = SimCache::new(Some(dir));
                for key in 0..KEYS {
                    cache.insert(key, &out);
                }
                done.store(true, Ordering::SeqCst);
            })
        };
        for _ in 0..3 {
            let dir = dir.clone();
            let out = out.clone();
            let done = &done;
            scope.spawn(move || {
                // A fresh instance per reader models a separate process:
                // no shared in-memory map, disk is the only channel.
                let cache = SimCache::new(Some(dir));
                while !done.load(Ordering::SeqCst) {
                    for key in 0..KEYS {
                        if let Some(got) = cache.peek(key) {
                            assert_eq!(got, out, "torn or wrong read at key {key}");
                        }
                    }
                }
            });
        }
        writer.join().expect("writer");
    });

    // After the writer finishes, a brand-new instance sees every key.
    let fresh = SimCache::new(Some(dir.clone()));
    for key in 0..KEYS {
        assert_eq!(fresh.peek(key), Some(out.clone()), "key {key} lost");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A writer dying mid-append leaves a truncated segment tail: entries
/// before the tear still serve, the torn one misses, nothing panics,
/// and re-inserting heals the store for the next process.
#[test]
fn mid_write_crash_degrades_to_miss_and_heals() {
    let dir = temp_dir("crash");
    let out = sample_output();

    let writer = SimCache::new(Some(dir.clone()));
    for key in 0..4u64 {
        writer.insert(key, &out);
    }
    drop(writer);

    // Simulate the crash: chop bytes off the segment tail, leaving the
    // last record incomplete but earlier records intact.
    let seg_dir = dir.join("segments");
    let seg = std::fs::read_dir(&seg_dir)
        .expect("segments dir")
        .flatten()
        .map(|e| e.path())
        .next()
        .expect("one segment");
    let bytes = std::fs::read(&seg).expect("read segment");
    std::fs::write(&seg, &bytes[..bytes.len() - 7]).expect("truncate tail");

    let fresh = SimCache::new(Some(dir.clone()));
    for key in 0..3u64 {
        assert_eq!(fresh.get(key), Some(out.clone()), "pre-tear key {key}");
    }
    assert_eq!(fresh.get(3), None, "torn record must miss, not serve");

    // The campaign's reaction to a miss is to re-simulate and insert;
    // that must fully heal the store for the next process.
    fresh.insert(3, &out);
    let healed = SimCache::new(Some(dir.clone()));
    for key in 0..4u64 {
        assert_eq!(healed.get(key), Some(out.clone()), "healed key {key}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Garbage appended by a dying writer (not just a clean truncation) is
/// also contained: valid earlier records serve, the rest misses.
#[test]
fn garbage_segment_tail_never_corrupts_served_results() {
    let dir = temp_dir("garbage");
    let out = sample_output();

    let writer = SimCache::new(Some(dir.clone()));
    writer.insert(1, &out);
    drop(writer);

    let seg = std::fs::read_dir(dir.join("segments"))
        .expect("segments dir")
        .flatten()
        .map(|e| e.path())
        .next()
        .expect("one segment");
    let mut bytes = std::fs::read(&seg).expect("read segment");
    // A plausible-looking but bogus record: a length prefix promising
    // more bytes than follow, then noise.
    bytes.extend_from_slice(&1_000u32.to_le_bytes());
    bytes.extend_from_slice(&[0xAB; 37]);
    std::fs::write(&seg, &bytes).expect("append garbage");

    let fresh = SimCache::new(Some(dir.clone()));
    assert_eq!(fresh.get(1), Some(out), "valid record still serves");
    assert_eq!(fresh.get(2), None, "garbage never materializes a key");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The `ITPX_SIMCACHE_MAX_MB` cap prunes oldest segments first; capped
/// stores keep working (recent keys hit, pruned keys miss, no errors).
#[test]
fn size_cap_prunes_oldest_segments_first() {
    let dir = temp_dir("prune");
    let out = sample_output();
    let entry_estimate = 512; // a smoke-scale entry is a few hundred bytes
    let cap = 8 * entry_estimate;
    let config = StoreConfig {
        max_bytes: Some(cap),
        // Tiny segments so pruning has fine-grained victims.
        segment_target: entry_estimate,
    };

    let cache = SimCache::with_config(Some(dir.clone()), config);
    const KEYS: u64 = 64;
    for key in 0..KEYS {
        cache.insert(key, &out);
    }
    // The cap holds (up to one segment of slack for the active writer).
    assert!(
        cache.disk_bytes() <= cap + 4 * entry_estimate,
        "store grew past its cap: {} > {}",
        cache.disk_bytes(),
        cap
    );

    // A fresh instance: the newest keys must still hit, the oldest must
    // have been pruned away — and pruning is a miss, never an error.
    let fresh = SimCache::with_config(Some(dir.clone()), config);
    assert_eq!(fresh.get(KEYS - 1), Some(out), "newest key pruned");
    assert_eq!(fresh.get(0), None, "oldest key should be pruned");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Two instances over one directory (two processes, conceptually):
/// everything one writes, the other reads back.
#[test]
fn cross_instance_visibility_through_one_directory() {
    let dir = temp_dir("visibility");
    let out = sample_output();
    let a = SimCache::new(Some(dir.clone()));
    let b = SimCache::new(Some(dir.clone()));
    a.insert(100, &out);
    assert_eq!(b.get(100), Some(out.clone()), "b sees a's insert");
    b.insert(200, &out);
    assert_eq!(a.get(200), Some(out), "a sees b's insert");
    let _ = std::fs::remove_dir_all(&dir);
}
