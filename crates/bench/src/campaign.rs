//! The campaign engine: batched, cached, globally scheduled simulations.
//!
//! Figures submit every `(preset × workload)` simulation they need as a
//! batch of [`SimRequest`]s. The [`Campaign`] deduplicates the batch by
//! content fingerprint, serves repeats from the [`SimCache`] (fig08,
//! fig09, fig11, fig12 and the calibration table all share their LRU
//! baselines), and executes only the residue — one flat job list across
//! `ITPX_THREADS` host threads with no per-column barrier.
//!
//! Requests with hand-built policy bundles ([`itpx_cpu::Simulation::custom`])
//! have no stable identity and stay outside the cache; figures run those
//! through [`crate::harness::Sweep`] directly.

use crate::harness::{RunScale, Sweep};
use crate::simcache::SimCache;
use itpx_core::presets::BuildConfig;
use itpx_core::Preset;
use itpx_cpu::{Simulation, SimulationOutput, SystemConfig};
use itpx_trace::{SmtPairSpec, WorkloadSpec};
use itpx_types::fingerprint::{Fingerprint, Fnv1a};
use std::collections::{BTreeMap, BTreeSet};

/// Version tag mixed into every request key; bump when the simulator
/// changes behavior without changing any configuration field.
const KEY_SCHEMA: &str = "itpx-simrequest-v1";

/// What runs on the simulated core.
#[derive(Debug, Clone)]
pub enum SimUnit {
    /// One workload on one hardware thread.
    Single(Box<WorkloadSpec>),
    /// Two workloads co-located under SMT.
    ///
    /// Both variants box their spec: a workload spec is a couple
    /// hundred bytes, and requests are built once per batch but cloned
    /// into sweep job lists.
    Pair(Box<SmtPairSpec>),
}

impl Fingerprint for SimUnit {
    fn fingerprint(&self, h: &mut Fnv1a) {
        match self {
            SimUnit::Single(w) => {
                h.write_u8(0);
                w.fingerprint(h);
            }
            SimUnit::Pair(p) => {
                h.write_u8(1);
                p.fingerprint(h);
            }
        }
    }
}

/// One simulation the campaign may run or serve from cache.
#[derive(Debug, Clone)]
pub struct SimRequest {
    /// Machine configuration.
    pub config: SystemConfig,
    /// Policy preset.
    pub preset: Preset,
    /// Policy build knobs (LLC choice, iTP/xPTP parameters).
    pub build: BuildConfig,
    /// Workload(s).
    pub unit: SimUnit,
}

impl SimRequest {
    /// A single-thread request with default build knobs.
    pub fn single(config: &SystemConfig, preset: Preset, w: &WorkloadSpec) -> Self {
        Self {
            config: *config,
            preset,
            build: BuildConfig::default(),
            unit: SimUnit::Single(Box::new(w.clone())),
        }
    }

    /// An SMT request with default build knobs.
    pub fn smt(config: &SystemConfig, preset: Preset, pair: &SmtPairSpec) -> Self {
        Self {
            config: *config,
            preset,
            build: BuildConfig::default(),
            unit: SimUnit::Pair(Box::new(pair.clone())),
        }
    }

    /// Overrides the build knobs.
    #[must_use]
    pub fn with_build(mut self, build: BuildConfig) -> Self {
        self.build = build;
        self
    }

    /// The content-addressed cache key: a stable hash over every input
    /// that determines this request's [`SimulationOutput`] — machine
    /// configuration, preset identity, build knobs, and workload
    /// parameters including run lengths. Never includes wall-clock time,
    /// host thread counts, or anything else that cannot change the
    /// simulated result.
    pub fn key(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_str(KEY_SCHEMA);
        self.config.fingerprint(&mut h);
        self.preset.fingerprint(&mut h);
        self.build.fingerprint(&mut h);
        self.unit.fingerprint(&mut h);
        h.finish()
    }

    /// Runs the simulation (no cache involvement).
    pub fn execute(&self) -> SimulationOutput {
        match &self.unit {
            SimUnit::Single(w) => Simulation::single_thread(&self.config, self.preset, w)
                .build_config(self.build)
                .run(),
            SimUnit::Pair(p) => Simulation::smt(&self.config, self.preset, p)
                .build_config(self.build)
                .run(),
        }
    }
}

/// Shared scheduler + cache for a whole campaign of figures.
#[derive(Debug)]
pub struct Campaign {
    scale: RunScale,
    sweep: Sweep,
    cache: SimCache,
}

impl Campaign {
    /// A campaign at `scale` backed by `cache`.
    pub fn new(scale: RunScale, cache: SimCache) -> Self {
        Self {
            sweep: Sweep::new(scale.host_threads),
            scale,
            cache,
        }
    }

    /// The standard configuration: scale and cache from the environment.
    pub fn from_env() -> Self {
        Self::new(RunScale::from_env(), SimCache::from_env())
    }

    /// The run scale figures should size their suites with.
    pub fn scale(&self) -> &RunScale {
        &self.scale
    }

    /// The underlying result cache (hit/miss counters live here).
    pub fn cache(&self) -> &SimCache {
        &self.cache
    }

    /// The sweep runner, for non-cacheable (custom-bundle) jobs.
    pub fn sweep(&self) -> &Sweep {
        &self.sweep
    }

    /// Resolves a batch of requests, in request order.
    ///
    /// The batch is deduplicated by [`SimRequest::key`]: each distinct key
    /// is looked up in the cache exactly once (counting one hit or miss),
    /// and the misses execute as one flat job list across the host
    /// threads. Repeated keys — within the batch or across batches — never
    /// simulate twice.
    pub fn run_batch(&self, requests: Vec<SimRequest>) -> Vec<SimulationOutput> {
        let keys: Vec<u64> = requests.iter().map(|r| r.key()).collect();
        let mut resolved: BTreeMap<u64, SimulationOutput> = BTreeMap::new();
        let mut queued: BTreeSet<u64> = BTreeSet::new();
        let mut jobs: Vec<(u64, SimRequest)> = Vec::new();
        for (req, &key) in requests.into_iter().zip(&keys) {
            if resolved.contains_key(&key) || queued.contains(&key) {
                continue;
            }
            match self.cache.get(key) {
                Some(out) => {
                    resolved.insert(key, out);
                }
                None => {
                    queued.insert(key);
                    jobs.push((key, req));
                }
            }
        }
        let job_keys: Vec<u64> = jobs.iter().map(|(k, _)| *k).collect();
        let outputs = self.sweep.run_generic(jobs, |(_, req)| req.execute());
        for (key, out) in job_keys.into_iter().zip(outputs) {
            self.cache.insert(key, &out);
            resolved.insert(key, out);
        }
        keys.iter()
            .map(|k| {
                resolved
                    .get(k)
                    // every key was either resolved from cache or executed
                    .expect("request resolved")
                    .clone()
            })
            .collect()
    }

    /// Convenience: resolves one request.
    pub fn run_one(&self, request: SimRequest) -> SimulationOutput {
        self.run_batch(vec![request])
            .pop()
            // run_batch returns exactly one output per request
            .expect("one output")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itpx_core::presets::LlcChoice;
    use itpx_trace::{smt_suite, SmtCategory};

    fn smoke_workload(seed: u64) -> WorkloadSpec {
        WorkloadSpec::server_like(seed)
            .instructions(5_000)
            .warmup(1_000)
    }

    fn base_request() -> SimRequest {
        SimRequest::single(&SystemConfig::asplos25(), Preset::Lru, &smoke_workload(1))
    }

    #[test]
    fn same_request_same_key() {
        assert_eq!(base_request().key(), base_request().key());
    }

    #[test]
    fn every_field_changes_the_key() {
        let base = base_request().key();
        let mut seen = vec![base];

        // Machine configuration fields.
        let mut r = base_request();
        r.config.seed ^= 1;
        seen.push(r.key());
        let mut r = base_request();
        r.config = r.config.with_itlb_entries(128);
        seen.push(r.key());
        let mut r = base_request();
        r.config = r.config.with_split_stlb(true);
        seen.push(r.key());
        let mut r = base_request();
        r.config.hierarchy.l2c_mut().mshr_entries += 1;
        seen.push(r.key());
        let mut r = base_request();
        r.config.huge_pages = itpx_vm::page_table::HugePagePolicy::uniform(0.5, 3);
        seen.push(r.key());

        // Chain depth: no-LLC and 4-level variants key distinctly.
        let mut r = base_request();
        r.config.hierarchy = itpx_mem::HierarchyConfig::asplos25_no_llc();
        seen.push(r.key());
        let mut r = base_request();
        r.config.hierarchy = itpx_mem::HierarchyConfig::asplos25_deep();
        seen.push(r.key());

        // Preset and build knobs.
        let mut r = base_request();
        r.preset = Preset::ItpXptp;
        seen.push(r.key());
        let r = base_request().with_build(BuildConfig {
            llc: LlcChoice::Ship,
            ..BuildConfig::default()
        });
        seen.push(r.key());
        let r = base_request().with_build(BuildConfig {
            t1: 999,
            ..BuildConfig::default()
        });
        seen.push(r.key());

        // Workload parameters, including run lengths.
        let r = SimRequest::single(&SystemConfig::asplos25(), Preset::Lru, &smoke_workload(2));
        seen.push(r.key());
        let r = SimRequest::single(
            &SystemConfig::asplos25(),
            Preset::Lru,
            &smoke_workload(1).instructions(6_000),
        );
        seen.push(r.key());
        let r = SimRequest::single(
            &SystemConfig::asplos25(),
            Preset::Lru,
            &smoke_workload(1).warmup(2_000),
        );
        seen.push(r.key());
        // A tiered schedule keys distinctly (and each knob matters).
        let tiered = |w, ff, n| {
            SimRequest::single(
                &SystemConfig::asplos25(),
                Preset::Lru,
                &smoke_workload(1).tiers(itpx_trace::TierSchedule::tiered(w, ff, n)),
            )
        };
        seen.push(tiered(1_000, 10_000, 4).key());
        seen.push(tiered(1_000, 10_000, 5).key());
        seen.push(tiered(1_000, 20_000, 4).key());
        seen.push(tiered(2_000, 10_000, 4).key());
        // A context schedule keys distinctly (and each knob matters).
        let ctx = |c: itpx_trace::ContextSchedule| {
            SimRequest::single(
                &SystemConfig::asplos25(),
                Preset::Lru,
                &smoke_workload(1).contexts(c),
            )
            .key()
        };
        let rr =
            itpx_trace::ContextSchedule::round_robin(2, 3_000, itpx_trace::SwitchPolicy::FlushAsid);
        seen.push(ctx(rr));
        seen.push(ctx(itpx_trace::ContextSchedule::round_robin(
            4,
            3_000,
            itpx_trace::SwitchPolicy::FlushAsid,
        )));
        seen.push(ctx(itpx_trace::ContextSchedule::round_robin(
            2,
            4_000,
            itpx_trace::SwitchPolicy::FlushAsid,
        )));
        seen.push(ctx(itpx_trace::ContextSchedule::round_robin(
            2,
            3_000,
            itpx_trace::SwitchPolicy::Preserve,
        )));
        seen.push(ctx(rr.shootdowns(500)));
        seen.push(ctx(rr.churn(2_000)));
        seen.push(ctx(rr.globals(0.5, 7)));
        seen.push(ctx(rr.globals(0.5, 8)));

        // Single vs pair on overlapping content.
        let pair = SmtPairSpec {
            a: smoke_workload(1),
            b: smoke_workload(1),
            category: SmtCategory::Intense,
        };
        let r = SimRequest::smt(&SystemConfig::asplos25(), Preset::Lru, &pair);
        seen.push(r.key());

        let unique: BTreeSet<u64> = seen.iter().copied().collect();
        assert_eq!(
            unique.len(),
            seen.len(),
            "every varied field must produce a distinct key: {seen:x?}"
        );
    }

    /// The flat schedule hashes as *nothing*: every simcache key minted
    /// before tiering existed must stay byte-identical, so warm caches
    /// keep serving.
    #[test]
    fn flat_schedule_keeps_pre_tiering_keys() {
        let explicit_flat = SimRequest::single(
            &SystemConfig::asplos25(),
            Preset::Lru,
            &smoke_workload(1).tiers(itpx_trace::TierSchedule::flat()),
        );
        assert_eq!(explicit_flat.key(), base_request().key());
    }

    /// Same contract for the context schedule: a flat (single-ASID,
    /// no-switching) schedule hashes as nothing, so keys minted before
    /// multi-tenancy existed keep serving warm caches.
    #[test]
    fn flat_context_schedule_keeps_pre_consolidation_keys() {
        let explicit_flat = SimRequest::single(
            &SystemConfig::asplos25(),
            Preset::Lru,
            &smoke_workload(1).contexts(itpx_trace::ContextSchedule::flat()),
        );
        assert_eq!(explicit_flat.key(), base_request().key());
    }

    #[test]
    fn smt_category_is_part_of_the_key() {
        let mk = |cat| {
            let pair = SmtPairSpec {
                a: smoke_workload(1),
                b: smoke_workload(2),
                category: cat,
            };
            SimRequest::smt(&SystemConfig::asplos25(), Preset::Lru, &pair).key()
        };
        assert_ne!(mk(SmtCategory::Intense), mk(SmtCategory::Relaxed));
    }

    #[test]
    fn batch_deduplicates_and_caches() {
        let campaign = Campaign::new(RunScale::smoke(), SimCache::new(None));
        let req = base_request();
        let outs = campaign.run_batch(vec![req.clone(), req.clone(), req.clone()]);
        assert_eq!(outs.len(), 3);
        assert_eq!(outs[0], outs[1]);
        assert_eq!(outs[1], outs[2]);
        // One unique key: one miss (executed once), no hits yet.
        assert_eq!((campaign.cache().hits(), campaign.cache().misses()), (0, 1));
        // A second batch is served entirely from cache.
        let again = campaign.run_one(req);
        assert_eq!(again, outs[0]);
        assert_eq!((campaign.cache().hits(), campaign.cache().misses()), (1, 1));
    }

    #[test]
    fn cached_and_fresh_results_are_identical() {
        let campaign = Campaign::new(RunScale::smoke(), SimCache::new(None));
        let mut pair = smt_suite(1).remove(0);
        pair.a = pair.a.instructions(5_000).warmup(1_000);
        pair.b = pair.b.instructions(5_000).warmup(1_000);
        let req = SimRequest::smt(&SystemConfig::asplos25(), Preset::ItpXptp, &pair);
        let fresh = req.execute();
        let via_campaign_cold = campaign.run_one(req.clone());
        let via_campaign_warm = campaign.run_one(req);
        assert_eq!(fresh, via_campaign_cold);
        assert_eq!(fresh, via_campaign_warm);
    }
}
