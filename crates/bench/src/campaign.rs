//! The campaign engine: batched, cached, globally scheduled simulations.
//!
//! Figures submit every `(preset × workload)` simulation they need as a
//! batch of [`SimRequest`]s. The [`Campaign`] deduplicates the batch by
//! content fingerprint, serves repeats from the [`SimCache`] (fig08,
//! fig09, fig11, fig12 and the calibration table all share their LRU
//! baselines), and executes only the residue — one flat job list across
//! `ITPX_THREADS` host threads with no per-column barrier.
//!
//! Requests with hand-built policy bundles ([`itpx_cpu::Simulation::custom`])
//! have no stable identity and stay outside the cache; figures run those
//! through [`crate::harness::Sweep`] directly.
//!
//! The cold residue of a batch is a [`WorkQueue`], resolved by one of
//! two [`Executor`]s: the classic in-process thread pool, or the
//! multi-process shard mode (`ITPX_SHARDS`/`ITPX_SHARD_INDEX`) where N
//! cooperating processes split the deduplicated queue by deterministic
//! key ranges, publish results through the shared segmented store, and
//! poll the store for each other's chunks — every shard ends the batch
//! holding the complete, byte-identical result set.

use crate::harness::{RunScale, Sweep};
use crate::simcache::SimCache;
use itpx_core::presets::BuildConfig;
use itpx_core::Preset;
use itpx_cpu::{Simulation, SimulationOutput, SystemConfig};
use itpx_trace::{SmtPairSpec, WorkloadSpec};
use itpx_types::fingerprint::{Fingerprint, Fnv1a};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};

/// Version tag mixed into every request key; bump when the simulator
/// changes behavior without changing any configuration field.
const KEY_SCHEMA: &str = "itpx-simrequest-v1";

/// What runs on the simulated core.
#[derive(Debug, Clone)]
pub enum SimUnit {
    /// One workload on one hardware thread.
    Single(Box<WorkloadSpec>),
    /// Two workloads co-located under SMT.
    ///
    /// Both variants box their spec: a workload spec is a couple
    /// hundred bytes, and requests are built once per batch but cloned
    /// into sweep job lists.
    Pair(Box<SmtPairSpec>),
}

impl Fingerprint for SimUnit {
    fn fingerprint(&self, h: &mut Fnv1a) {
        match self {
            SimUnit::Single(w) => {
                h.write_u8(0);
                w.fingerprint(h);
            }
            SimUnit::Pair(p) => {
                h.write_u8(1);
                p.fingerprint(h);
            }
        }
    }
}

/// One simulation the campaign may run or serve from cache.
#[derive(Debug, Clone)]
pub struct SimRequest {
    /// Machine configuration.
    pub config: SystemConfig,
    /// Policy preset.
    pub preset: Preset,
    /// Policy build knobs (LLC choice, iTP/xPTP parameters).
    pub build: BuildConfig,
    /// Workload(s).
    pub unit: SimUnit,
}

impl SimRequest {
    /// A single-thread request with default build knobs.
    pub fn single(config: &SystemConfig, preset: Preset, w: &WorkloadSpec) -> Self {
        Self {
            config: *config,
            preset,
            build: BuildConfig::default(),
            unit: SimUnit::Single(Box::new(w.clone())),
        }
    }

    /// An SMT request with default build knobs.
    pub fn smt(config: &SystemConfig, preset: Preset, pair: &SmtPairSpec) -> Self {
        Self {
            config: *config,
            preset,
            build: BuildConfig::default(),
            unit: SimUnit::Pair(Box::new(pair.clone())),
        }
    }

    /// Overrides the build knobs.
    #[must_use]
    pub fn with_build(mut self, build: BuildConfig) -> Self {
        self.build = build;
        self
    }

    /// The content-addressed cache key: a stable hash over every input
    /// that determines this request's [`SimulationOutput`] — machine
    /// configuration, preset identity, build knobs, and workload
    /// parameters including run lengths. Never includes wall-clock time,
    /// host thread counts, or anything else that cannot change the
    /// simulated result.
    pub fn key(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_str(KEY_SCHEMA);
        self.config.fingerprint(&mut h);
        self.preset.fingerprint(&mut h);
        self.build.fingerprint(&mut h);
        self.unit.fingerprint(&mut h);
        h.finish()
    }

    /// Runs the simulation (no cache involvement).
    pub fn execute(&self) -> SimulationOutput {
        match &self.unit {
            SimUnit::Single(w) => Simulation::single_thread(&self.config, self.preset, w)
                .build_config(self.build)
                .run(),
            SimUnit::Pair(p) => Simulation::smt(&self.config, self.preset, p)
                .build_config(self.build)
                .run(),
        }
    }
}

/// One deduplicated batch: every distinct request, in first-appearance
/// order, keyed by content fingerprint. The queue holds hits and misses
/// alike — shard partitioning runs over the full set, so the chunk map
/// depends only on the batch, never on store state.
#[derive(Debug)]
pub struct WorkQueue {
    jobs: Vec<(u64, SimRequest)>,
}

impl WorkQueue {
    /// Wraps a deduplicated `(key, request)` list.
    pub fn new(jobs: Vec<(u64, SimRequest)>) -> Self {
        Self { jobs }
    }

    /// Number of queued jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// `true` when the cache served everything.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The queued keys, in queue order.
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.jobs.iter().map(|(k, _)| *k)
    }

    /// Deterministic key-range partition: job indices sorted by key are
    /// split into `shards` contiguous, near-equal chunks and chunk
    /// `index` is returned. Every cooperating shard computes the same
    /// queue from the same figure code, so the chunks are disjoint and
    /// jointly exhaustive without any coordination.
    pub fn shard(&self, shards: u64, index: u64) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.jobs.len()).collect();
        order.sort_by_key(|&i| self.jobs[i].0);
        let (n, shards, index) = (order.len(), shards as usize, index as usize);
        order[(index * n) / shards..((index + 1) * n) / shards].to_vec()
    }
}

/// How a [`WorkQueue`] gets executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Executor {
    /// Every job runs on this process's thread pool — the classic mode.
    InProcess,
    /// This process runs shard `index` of `shards` (its key-range chunk
    /// of the queue) and resolves the other chunks by polling the shared
    /// store, falling back to local execution if a peer shard never
    /// delivers. Requires all shards to share one on-disk cache
    /// directory.
    Sharded {
        /// Total cooperating processes.
        shards: u64,
        /// This process's chunk (`< shards`).
        index: u64,
    },
}

impl Executor {
    /// The executor selected by `ITPX_SHARDS`/`ITPX_SHARD_INDEX`
    /// (validated by [`crate::env`]; `ITPX_SHARDS=1` or unset is the
    /// classic in-process mode).
    pub fn from_env() -> Self {
        match crate::env::shard_layout_from_env() {
            (0 | 1, _) => Executor::InProcess,
            (shards, index) => Executor::Sharded { shards, index },
        }
    }
}

/// Poll rounds before a shard gives up on its peers and runs the
/// leftover jobs itself (self-healing a crashed shard). With the
/// backoff in [`poll_backoff_ms`] this is several minutes of patience.
const POLL_ROUNDS: u32 = 1_200;

/// Backoff for poll round `round`: ramps 25 ms → 250 ms.
fn poll_backoff_ms(round: u32) -> u64 {
    (25 * (u64::from(round) + 1)).min(250)
}

/// Shared scheduler + cache for a whole campaign of figures.
#[derive(Debug)]
pub struct Campaign {
    scale: RunScale,
    sweep: Sweep,
    cache: SimCache,
    executor: Executor,
    poll_rounds: u32,
    executed: AtomicU64,
}

impl Campaign {
    /// A campaign at `scale` backed by `cache`, executing in-process.
    pub fn new(scale: RunScale, cache: SimCache) -> Self {
        Self {
            sweep: Sweep::new(scale.host_threads),
            scale,
            cache,
            executor: Executor::InProcess,
            poll_rounds: POLL_ROUNDS,
            executed: AtomicU64::new(0),
        }
    }

    /// Replaces the queue executor (shard mode for multi-process runs).
    #[must_use]
    pub fn with_executor(mut self, executor: Executor) -> Self {
        self.executor = executor;
        self
    }

    /// Shortens the peer-poll patience (tests exercise the self-heal
    /// path without waiting out the production default).
    #[must_use]
    pub fn with_poll_rounds(mut self, rounds: u32) -> Self {
        self.poll_rounds = rounds;
        self
    }

    /// The standard configuration: scale, cache, and executor from the
    /// environment.
    pub fn from_env() -> Self {
        Self::new(RunScale::from_env(), SimCache::from_env()).with_executor(Executor::from_env())
    }

    /// The run scale figures should size their suites with.
    pub fn scale(&self) -> &RunScale {
        &self.scale
    }

    /// The underlying result cache (hit/miss counters live here).
    pub fn cache(&self) -> &SimCache {
        &self.cache
    }

    /// The sweep runner, for non-cacheable (custom-bundle) jobs.
    pub fn sweep(&self) -> &Sweep {
        &self.sweep
    }

    /// How this campaign executes cold work.
    pub fn executor(&self) -> Executor {
        self.executor
    }

    /// Simulations this process actually executed (as opposed to served
    /// from the cache or received from peer shards).
    pub fn executed(&self) -> u64 {
        self.executed.load(Ordering::Relaxed)
    }

    /// Resolves a batch of requests, in request order.
    ///
    /// The batch is deduplicated by [`SimRequest::key`] into one
    /// [`WorkQueue`]; each distinct key is then looked up in the cache
    /// exactly once (counting one hit or miss), and the misses are
    /// handed to the configured [`Executor`]. Repeated keys — within
    /// the batch or across batches — never simulate twice in one
    /// process, and in shard mode at most once across the whole fleet
    /// (barring self-heal takeovers).
    pub fn run_batch(&self, requests: Vec<SimRequest>) -> Vec<SimulationOutput> {
        let keys: Vec<u64> = requests.iter().map(|r| r.key()).collect();
        let mut queued: BTreeSet<u64> = BTreeSet::new();
        let mut jobs: Vec<(u64, SimRequest)> = Vec::new();
        for (req, &key) in requests.into_iter().zip(&keys) {
            if queued.insert(key) {
                jobs.push((key, req));
            }
        }
        // The queue holds every unique key, hit or miss: shard
        // partitioning must be a pure function of the request batch, not
        // of how much of the store peer shards have already filled.
        let queue = WorkQueue::new(jobs);
        let mut resolved: BTreeMap<u64, SimulationOutput> = BTreeMap::new();
        let mut misses: Vec<usize> = Vec::new();
        for (i, &(key, _)) in queue.jobs.iter().enumerate() {
            match self.cache.get(key) {
                Some(out) => {
                    resolved.insert(key, out);
                }
                None => misses.push(i),
            }
        }
        for (key, out) in self.execute_queue(&queue, misses) {
            resolved.insert(key, out);
        }
        keys.iter()
            .map(|k| {
                resolved
                    .get(k)
                    // every key was either resolved from cache or executed
                    .expect("request resolved")
                    .clone()
            })
            .collect()
    }

    /// Executes the queue entries at `misses` under the configured
    /// executor, returning one output per missing key (order
    /// unspecified; callers key off the returned pairs). Results are
    /// published to the cache from inside the worker threads, so peer
    /// shards see them as early as possible.
    ///
    /// In shard mode the partition is computed over the *full* queue —
    /// identical on every shard by construction — and this shard then
    /// executes only the misses inside its own chunk. Misses outside it
    /// belong to a peer: either that peer also sees them as misses and
    /// executes them, or it saw hits because the results were already
    /// on disk — in which case polling returns immediately. Partitioning
    /// only the misses instead would let desynchronized shards (one
    /// figure ahead of its peer, dedup racing fresh inserts) derive
    /// conflicting chunk maps and strand keys no shard claims until the
    /// self-heal patience runs out.
    fn execute_queue(&self, queue: &WorkQueue, misses: Vec<usize>) -> Vec<(u64, SimulationOutput)> {
        if misses.is_empty() {
            return Vec::new();
        }
        let (mine, waited): (Vec<usize>, Vec<usize>) = match self.executor {
            Executor::InProcess | Executor::Sharded { shards: 1, .. } => (misses, Vec::new()),
            Executor::Sharded { shards, index } => {
                let chunk: BTreeSet<usize> = queue.shard(shards, index).into_iter().collect();
                misses.into_iter().partition(|i| chunk.contains(i))
            }
        };
        let mut outputs = self.execute_jobs(queue, mine);
        outputs.extend(self.await_peers(queue, waited));
        outputs
    }

    /// Runs the queue entries at `indices` on the local sweep, inserting
    /// each result into the cache as it completes.
    fn execute_jobs(&self, queue: &WorkQueue, indices: Vec<usize>) -> Vec<(u64, SimulationOutput)> {
        self.executed
            .fetch_add(indices.len() as u64, Ordering::Relaxed);
        self.sweep.run_generic(indices, |&i| {
            let (key, req) = &queue.jobs[i];
            let out = req.execute();
            self.cache.insert(*key, &out);
            (*key, out)
        })
    }

    /// Polls the shared store for peer shards' results, self-healing by
    /// executing anything a peer never delivers.
    fn await_peers(&self, queue: &WorkQueue, waited: Vec<usize>) -> Vec<(u64, SimulationOutput)> {
        let mut outputs = Vec::with_capacity(waited.len());
        let mut missing = waited;
        for round in 0..self.poll_rounds {
            missing.retain(|&i| {
                let key = queue.jobs[i].0;
                match self.cache.peek(key) {
                    Some(out) => {
                        outputs.push((key, out));
                        false
                    }
                    None => true,
                }
            });
            if missing.is_empty() {
                return outputs;
            }
            crate::harness::sleep_ms(poll_backoff_ms(round));
        }
        // A peer shard crashed or was never started: take its jobs over
        // rather than hanging the campaign.
        eprintln!(
            "warning: peer shards never delivered {} job(s); executing them locally",
            missing.len()
        );
        outputs.extend(self.execute_jobs(queue, missing));
        outputs
    }

    /// Convenience: resolves one request.
    pub fn run_one(&self, request: SimRequest) -> SimulationOutput {
        self.run_batch(vec![request])
            .pop()
            // run_batch returns exactly one output per request
            .expect("one output")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itpx_core::presets::LlcChoice;
    use itpx_trace::{smt_suite, SmtCategory};

    fn smoke_workload(seed: u64) -> WorkloadSpec {
        WorkloadSpec::server_like(seed)
            .instructions(5_000)
            .warmup(1_000)
    }

    fn base_request() -> SimRequest {
        SimRequest::single(&SystemConfig::asplos25(), Preset::Lru, &smoke_workload(1))
    }

    #[test]
    fn same_request_same_key() {
        assert_eq!(base_request().key(), base_request().key());
    }

    #[test]
    fn every_field_changes_the_key() {
        let base = base_request().key();
        let mut seen = vec![base];

        // Machine configuration fields.
        let mut r = base_request();
        r.config.seed ^= 1;
        seen.push(r.key());
        let mut r = base_request();
        r.config = r.config.with_itlb_entries(128);
        seen.push(r.key());
        let mut r = base_request();
        r.config = r.config.with_split_stlb(true);
        seen.push(r.key());
        let mut r = base_request();
        r.config.hierarchy.l2c_mut().mshr_entries += 1;
        seen.push(r.key());
        let mut r = base_request();
        r.config.huge_pages = itpx_vm::page_table::HugePagePolicy::uniform(0.5, 3);
        seen.push(r.key());

        // Chain depth: no-LLC and 4-level variants key distinctly.
        let mut r = base_request();
        r.config.hierarchy = itpx_mem::HierarchyConfig::asplos25_no_llc();
        seen.push(r.key());
        let mut r = base_request();
        r.config.hierarchy = itpx_mem::HierarchyConfig::asplos25_deep();
        seen.push(r.key());

        // Preset and build knobs.
        let mut r = base_request();
        r.preset = Preset::ItpXptp;
        seen.push(r.key());
        let r = base_request().with_build(BuildConfig {
            llc: LlcChoice::Ship,
            ..BuildConfig::default()
        });
        seen.push(r.key());
        let r = base_request().with_build(BuildConfig {
            t1: 999,
            ..BuildConfig::default()
        });
        seen.push(r.key());

        // Workload parameters, including run lengths.
        let r = SimRequest::single(&SystemConfig::asplos25(), Preset::Lru, &smoke_workload(2));
        seen.push(r.key());
        let r = SimRequest::single(
            &SystemConfig::asplos25(),
            Preset::Lru,
            &smoke_workload(1).instructions(6_000),
        );
        seen.push(r.key());
        let r = SimRequest::single(
            &SystemConfig::asplos25(),
            Preset::Lru,
            &smoke_workload(1).warmup(2_000),
        );
        seen.push(r.key());
        // A tiered schedule keys distinctly (and each knob matters).
        let tiered = |w, ff, n| {
            SimRequest::single(
                &SystemConfig::asplos25(),
                Preset::Lru,
                &smoke_workload(1).tiers(itpx_trace::TierSchedule::tiered(w, ff, n)),
            )
        };
        seen.push(tiered(1_000, 10_000, 4).key());
        seen.push(tiered(1_000, 10_000, 5).key());
        seen.push(tiered(1_000, 20_000, 4).key());
        seen.push(tiered(2_000, 10_000, 4).key());
        // A context schedule keys distinctly (and each knob matters).
        let ctx = |c: itpx_trace::ContextSchedule| {
            SimRequest::single(
                &SystemConfig::asplos25(),
                Preset::Lru,
                &smoke_workload(1).contexts(c),
            )
            .key()
        };
        let rr =
            itpx_trace::ContextSchedule::round_robin(2, 3_000, itpx_trace::SwitchPolicy::FlushAsid);
        seen.push(ctx(rr));
        seen.push(ctx(itpx_trace::ContextSchedule::round_robin(
            4,
            3_000,
            itpx_trace::SwitchPolicy::FlushAsid,
        )));
        seen.push(ctx(itpx_trace::ContextSchedule::round_robin(
            2,
            4_000,
            itpx_trace::SwitchPolicy::FlushAsid,
        )));
        seen.push(ctx(itpx_trace::ContextSchedule::round_robin(
            2,
            3_000,
            itpx_trace::SwitchPolicy::Preserve,
        )));
        seen.push(ctx(rr.shootdowns(500)));
        seen.push(ctx(rr.churn(2_000)));
        seen.push(ctx(rr.globals(0.5, 7)));
        seen.push(ctx(rr.globals(0.5, 8)));

        // Single vs pair on overlapping content.
        let pair = SmtPairSpec {
            a: smoke_workload(1),
            b: smoke_workload(1),
            category: SmtCategory::Intense,
        };
        let r = SimRequest::smt(&SystemConfig::asplos25(), Preset::Lru, &pair);
        seen.push(r.key());

        let unique: BTreeSet<u64> = seen.iter().copied().collect();
        assert_eq!(
            unique.len(),
            seen.len(),
            "every varied field must produce a distinct key: {seen:x?}"
        );
    }

    /// The flat schedule hashes as *nothing*: every simcache key minted
    /// before tiering existed must stay byte-identical, so warm caches
    /// keep serving.
    #[test]
    fn flat_schedule_keeps_pre_tiering_keys() {
        let explicit_flat = SimRequest::single(
            &SystemConfig::asplos25(),
            Preset::Lru,
            &smoke_workload(1).tiers(itpx_trace::TierSchedule::flat()),
        );
        assert_eq!(explicit_flat.key(), base_request().key());
    }

    /// Same contract for the context schedule: a flat (single-ASID,
    /// no-switching) schedule hashes as nothing, so keys minted before
    /// multi-tenancy existed keep serving warm caches.
    #[test]
    fn flat_context_schedule_keeps_pre_consolidation_keys() {
        let explicit_flat = SimRequest::single(
            &SystemConfig::asplos25(),
            Preset::Lru,
            &smoke_workload(1).contexts(itpx_trace::ContextSchedule::flat()),
        );
        assert_eq!(explicit_flat.key(), base_request().key());
    }

    #[test]
    fn smt_category_is_part_of_the_key() {
        let mk = |cat| {
            let pair = SmtPairSpec {
                a: smoke_workload(1),
                b: smoke_workload(2),
                category: cat,
            };
            SimRequest::smt(&SystemConfig::asplos25(), Preset::Lru, &pair).key()
        };
        assert_ne!(mk(SmtCategory::Intense), mk(SmtCategory::Relaxed));
    }

    #[test]
    fn shard_partition_is_deterministic_disjoint_and_exhaustive() {
        let jobs: Vec<(u64, SimRequest)> = (0..11)
            .map(|seed| {
                let req = SimRequest::single(
                    &SystemConfig::asplos25(),
                    Preset::Lru,
                    &smoke_workload(seed),
                );
                (req.key(), req)
            })
            .collect();
        let queue = WorkQueue::new(jobs);
        for shards in 1..=4u64 {
            let mut seen: Vec<usize> = Vec::new();
            for index in 0..shards {
                let chunk = queue.shard(shards, index);
                // Deterministic: the same call yields the same chunk.
                assert_eq!(chunk, queue.shard(shards, index));
                // Near-equal: chunk sizes differ by at most one.
                let n = queue.len() as u64;
                let ideal = n / shards;
                assert!((ideal..=ideal + 1).contains(&(chunk.len() as u64)));
                seen.extend(chunk);
            }
            // Disjoint and jointly exhaustive.
            let unique: BTreeSet<usize> = seen.iter().copied().collect();
            assert_eq!(
                unique.len(),
                seen.len(),
                "chunks overlap at {shards} shards"
            );
            assert_eq!(
                unique.len(),
                queue.len(),
                "chunks miss jobs at {shards} shards"
            );
        }
    }

    #[test]
    fn shard_chunks_are_contiguous_key_ranges() {
        let jobs: Vec<(u64, SimRequest)> = (0..7)
            .map(|seed| {
                let req = SimRequest::single(
                    &SystemConfig::asplos25(),
                    Preset::Lru,
                    &smoke_workload(seed),
                );
                (req.key(), req)
            })
            .collect();
        let queue = WorkQueue::new(jobs);
        let max_key = |idx: &[usize]| idx.iter().map(|&i| queue.jobs[i].0).max();
        let min_key = |idx: &[usize]| idx.iter().map(|&i| queue.jobs[i].0).min();
        let (a, b) = (queue.shard(2, 0), queue.shard(2, 1));
        // Every key in shard 0's range sits below every key in shard 1's.
        assert!(max_key(&a) < min_key(&b));
    }

    #[test]
    fn single_shard_layouts_collapse_to_in_process() {
        // Executor::from_env maps a 1-shard layout to InProcess; the
        // executor itself also treats Sharded{shards: 1} as run-it-all.
        let campaign = Campaign::new(RunScale::smoke(), SimCache::new(None)).with_executor(
            Executor::Sharded {
                shards: 1,
                index: 0,
            },
        );
        let out = campaign.run_one(base_request());
        assert_eq!(out, base_request().execute());
        assert_eq!(campaign.executed(), 1);
    }

    #[test]
    fn batch_deduplicates_and_caches() {
        let campaign = Campaign::new(RunScale::smoke(), SimCache::new(None));
        let req = base_request();
        let outs = campaign.run_batch(vec![req.clone(), req.clone(), req.clone()]);
        assert_eq!(outs.len(), 3);
        assert_eq!(outs[0], outs[1]);
        assert_eq!(outs[1], outs[2]);
        // One unique key: one miss (executed once), no hits yet.
        assert_eq!((campaign.cache().hits(), campaign.cache().misses()), (0, 1));
        // A second batch is served entirely from cache.
        let again = campaign.run_one(req);
        assert_eq!(again, outs[0]);
        assert_eq!((campaign.cache().hits(), campaign.cache().misses()), (1, 1));
    }

    #[test]
    fn cached_and_fresh_results_are_identical() {
        let campaign = Campaign::new(RunScale::smoke(), SimCache::new(None));
        let mut pair = smt_suite(1).remove(0);
        pair.a = pair.a.instructions(5_000).warmup(1_000);
        pair.b = pair.b.instructions(5_000).warmup(1_000);
        let req = SimRequest::smt(&SystemConfig::asplos25(), Preset::ItpXptp, &pair);
        let fresh = req.execute();
        let via_campaign_cold = campaign.run_one(req.clone());
        let via_campaign_warm = campaign.run_one(req);
        assert_eq!(fresh, via_campaign_cold);
        assert_eq!(fresh, via_campaign_warm);
    }
}
