//! Report formatting: distribution summaries (the textual equivalent of
//! the paper's violin plots), aligned tables, and report files.

use itpx_types::stats::geomean_speedup;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Five-number summary of a per-workload metric distribution — the text
/// rendering of one violin in the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Distribution {
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// Maximum.
    pub max: f64,
    /// Geometric-mean speedup (for improvement metrics) — the black dot.
    pub geomean: f64,
}

impl Distribution {
    /// Summarizes a set of per-workload values (percent improvements use
    /// [`geomean_speedup`] over the fractional values).
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "empty distribution");
        let mut v = values.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
        let q = |p: f64| -> f64 {
            let idx = p * (v.len() - 1) as f64;
            let lo = idx.floor() as usize;
            let hi = idx.ceil() as usize;
            if lo == hi {
                v[lo]
            } else {
                v[lo] + (v[hi] - v[lo]) * (idx - lo as f64)
            }
        };
        let fractions: Vec<f64> = values.iter().map(|x| x / 100.0).collect();
        Self {
            min: v[0],
            p25: q(0.25),
            median: q(0.5),
            p75: q(0.75),
            max: *v.last().expect("non-empty"),
            geomean: geomean_speedup(&fractions) * 100.0,
        }
    }
}

impl std::fmt::Display for Distribution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "min {:+7.2}  p25 {:+7.2}  med {:+7.2}  p75 {:+7.2}  max {:+7.2}  | geomean {:+7.2}",
            self.min, self.p25, self.median, self.p75, self.max, self.geomean
        )
    }
}

/// A text report that accumulates lines and can be printed and saved.
#[derive(Debug, Clone)]
pub struct Report {
    title: String,
    body: String,
}

impl Report {
    /// Starts a report for one experiment.
    pub fn new(title: impl Into<String>) -> Self {
        let title = title.into();
        let mut body = String::new();
        let _ = writeln!(body, "# {title}");
        Self { title, body }
    }

    /// Appends one line.
    pub fn line(&mut self, s: impl AsRef<str>) {
        self.body.push_str(s.as_ref());
        self.body.push('\n');
    }

    /// Appends a formatted key/value row.
    pub fn row(&mut self, key: impl AsRef<str>, value: impl std::fmt::Display) {
        let _ = writeln!(self.body, "{:<28} {value}", key.as_ref());
    }

    /// The accumulated text.
    pub fn text(&self) -> &str {
        &self.body
    }

    /// Prints to stdout and writes `target/experiments/<slug>.txt`,
    /// returning the path (best effort: IO errors are reported, not fatal).
    pub fn finish(&self) -> Option<PathBuf> {
        println!("{}", self.body);
        let slug: String = self
            .title
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '_'
                }
            })
            .collect();
        let dir = PathBuf::from("target/experiments");
        if std::fs::create_dir_all(&dir).is_err() {
            return None;
        }
        let path = dir.join(format!("{slug}.txt"));
        match std::fs::write(&path, &self.body) {
            Ok(()) => Some(path),
            Err(e) => {
                eprintln!("could not write report {}: {e}", path.display());
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_five_numbers() {
        let d = Distribution::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(d.min, 1.0);
        assert_eq!(d.median, 3.0);
        assert_eq!(d.max, 5.0);
        assert_eq!(d.p25, 2.0);
        assert_eq!(d.p75, 4.0);
    }

    #[test]
    fn geomean_matches_library() {
        let d = Distribution::of(&[10.0, 10.0]);
        assert!((d.geomean - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_distribution_panics() {
        let _ = Distribution::of(&[]);
    }

    #[test]
    fn report_accumulates() {
        let mut r = Report::new("Fig X");
        r.row("alpha", 1.5);
        r.line("done");
        assert!(r.text().contains("# Fig X"));
        assert!(r.text().contains("alpha"));
        assert!(r.text().contains("done"));
    }
}
