//! Terminal rendering of the paper's figure shapes: horizontal bars for
//! geomean comparisons and density strips (one-line violins) for
//! per-workload distributions.

use crate::report::Distribution;

/// Renders a horizontal bar chart. Values may be negative; the zero line
/// is placed proportionally. Returns the chart as a string.
///
/// # Examples
///
/// ```
/// use itpx_bench::plot::bar_chart;
/// let s = bar_chart(&[("iTP+xPTP", 10.4), ("TDRRIP", 4.0)], 40);
/// assert!(s.contains("iTP+xPTP"));
/// ```
pub fn bar_chart(rows: &[(&str, f64)], width: usize) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let max = rows.iter().map(|r| r.1).fold(0.0f64, f64::max).max(0.0);
    let min = rows.iter().map(|r| r.1).fold(0.0f64, f64::min).min(0.0);
    let span = (max - min).max(1e-9);
    let label_w = rows.iter().map(|r| r.0.len()).max().unwrap_or(0);
    let zero = ((-min / span) * width as f64).round() as usize;
    let mut out = String::new();
    for (label, value) in rows {
        let pos = (((value - min) / span) * width as f64).round() as usize;
        let (lo, hi) = if *value >= 0.0 {
            (zero, pos.max(zero))
        } else {
            (pos.min(zero), zero)
        };
        let mut bar: Vec<char> = vec![' '; width + 1];
        for c in bar.iter_mut().take(hi.min(width)).skip(lo) {
            *c = '#';
        }
        if zero <= width {
            bar[zero] = '|';
        }
        out.push_str(&format!(
            "{label:<label_w$} {} {value:+7.2}\n",
            bar.into_iter().collect::<String>()
        ));
    }
    out
}

/// Renders a one-line density strip for a distribution summary: the
/// min..max range as a rail, the interquartile range as a box, the median
/// as `*`, and the geomean as `o`.
pub fn violin_strip(d: &Distribution, lo: f64, hi: f64, width: usize) -> String {
    let span = (hi - lo).max(1e-9);
    let clamp = |x: f64| {
        ((x - lo) / span * (width - 1) as f64)
            .round()
            .clamp(0.0, (width - 1) as f64) as usize
    };
    let mut s: Vec<char> = vec![' '; width];
    for c in s.iter_mut().take(clamp(d.max) + 1).skip(clamp(d.min)) {
        *c = '-';
    }
    for c in s.iter_mut().take(clamp(d.p75) + 1).skip(clamp(d.p25)) {
        *c = '=';
    }
    s[clamp(d.median)] = '*';
    s[clamp(d.geomean)] = 'o';
    s.into_iter().collect()
}

/// Renders a full violin panel: one strip per policy on a shared scale.
pub fn violin_panel(rows: &[(&str, Distribution)], width: usize) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let lo = rows
        .iter()
        .map(|r| r.1.min)
        .fold(f64::INFINITY, f64::min)
        .min(0.0);
    let hi = rows
        .iter()
        .map(|r| r.1.max)
        .fold(f64::NEG_INFINITY, f64::max)
        .max(0.0);
    let label_w = rows.iter().map(|r| r.0.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, d) in rows {
        out.push_str(&format!(
            "{label:<label_w$} [{}] {:+6.2}\n",
            violin_strip(d, lo, hi, width),
            d.geomean
        ));
    }
    out.push_str(&format!("{:label_w$} {:<width$.2}{:>8.2}\n", "", lo, hi));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_scale_with_values() {
        let s = bar_chart(&[("a", 10.0), ("b", 5.0), ("c", 0.0)], 20);
        let lines: Vec<&str> = s.lines().collect();
        let count = |l: &str| l.chars().filter(|&c| c == '#').count();
        assert!(count(lines[0]) > count(lines[1]));
        assert!(count(lines[1]) > count(lines[2]));
    }

    #[test]
    fn negative_bars_extend_left_of_zero() {
        let s = bar_chart(&[("neg", -5.0), ("pos", 5.0)], 20);
        let lines: Vec<&str> = s.lines().collect();
        let zero_neg = lines[0].find('|').unwrap();
        let first_hash_neg = lines[0].find('#').unwrap();
        assert!(first_hash_neg < zero_neg, "negative bar left of zero");
        let zero_pos = lines[1].find('|').unwrap();
        let first_hash_pos = lines[1].find('#').unwrap();
        assert!(first_hash_pos > zero_pos, "positive bar right of zero");
    }

    #[test]
    fn violin_orders_markers() {
        let d = Distribution::of(&[1.0, 2.0, 3.0, 4.0, 10.0]);
        let strip = violin_strip(&d, 0.0, 10.0, 40);
        let med = strip.find('*');
        assert!(med.is_some());
        assert!(strip.contains('='), "IQR box present");
        assert_eq!(strip.len(), 40);
    }

    #[test]
    fn panel_includes_all_rows_and_scale() {
        let d1 = Distribution::of(&[1.0, 2.0, 3.0]);
        let d2 = Distribution::of(&[4.0, 5.0, 6.0]);
        let p = violin_panel(&[("alpha", d1), ("beta", d2)], 30);
        assert!(p.contains("alpha") && p.contains("beta"));
        assert_eq!(p.lines().count(), 3);
    }

    #[test]
    fn empty_inputs_yield_empty_output() {
        assert!(bar_chart(&[], 20).is_empty());
        assert!(violin_panel(&[], 20).is_empty());
    }
}
