//! Multi-tenant consolidation sweep — the context-schedule subsystem's
//! bench experiment.
//!
//! The paper evaluates single-tenant machines; the ASID-tagged
//! translation path makes tenant count a workload axis. This sweep runs
//! the server-like suite at 1/2/4/8 consolidated tenants (round-robin
//! quanta over one hardware thread, flushing switches — the
//! conservative policy every OS supports) with LRU baselines and
//! iTP+xPTP, answering two questions per point: does iTP+xPTP's uplift
//! survive consolidation, and how quickly does tenant pressure inflate
//! the baseline's walk traffic?
//!
//! Every point is a block of [`SimRequest`]s through the shared
//! [`Campaign`], so each tenant count keys distinctly in the simcache
//! (non-flat context schedules extend the workload fingerprint) and
//! repeated sweeps are served from cache. `ITPX_TENANTS` caps the sweep
//! (CI smoke runs `ITPX_TENANTS=2`).

use crate::campaign::{Campaign, SimRequest};
use crate::harness::RunScale;
use itpx_core::Preset;
use itpx_cpu::{SimulationOutput, SystemConfig};
use itpx_trace::{qualcomm_like_suite, ContextSchedule, SwitchPolicy, WorkloadSpec};
use itpx_types::stats::geomean_speedup;

/// Tenant counts the sweep covers (1 = the classic single-tenant run).
pub const TENANTS: &[u16] = &[1, 2, 4, 8];

/// Scheduler quantum in instructions: small enough that every
/// measurement window spans many switches, large enough that a tenant
/// re-warms its TLB footprint inside one quantum.
pub const QUANTUM: u64 = 2_500;

/// One sweep point: a tenant count under the flushing round-robin
/// schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ConsolidationCell {
    /// Tenants sharing the hardware thread (1 = no schedule at all).
    pub tenants: u16,
    /// Geomean iTP+xPTP IPC uplift over LRU at this point, in percent.
    pub geomean_pct: f64,
    /// Mean LRU-baseline page walks per kilo-instruction (how much
    /// translation pressure consolidation adds).
    pub baseline_walks_pki: f64,
    /// Mean LRU-baseline STLB MPKI.
    pub baseline_stlb_mpki: f64,
}

/// Tenant counts after the `ITPX_TENANTS` cap (unset or invalid: the
/// full sweep).
pub fn tenant_counts() -> Vec<u16> {
    let cap = std::env::var("ITPX_TENANTS")
        .ok()
        .and_then(|v| v.parse::<u16>().ok())
        .unwrap_or(u16::MAX);
    TENANTS.iter().copied().filter(|&t| t <= cap).collect()
}

fn suite(scale: &RunScale) -> Vec<WorkloadSpec> {
    qualcomm_like_suite(scale.workloads)
        .into_iter()
        .map(|w| scale.apply(w))
        .collect()
}

fn consolidate(w: &WorkloadSpec, tenants: u16) -> WorkloadSpec {
    if tenants <= 1 {
        w.clone()
    } else {
        w.clone().contexts(ContextSchedule::round_robin(
            tenants,
            QUANTUM,
            SwitchPolicy::FlushAsid,
        ))
    }
}

/// Runs the sweep: every tenant count as one campaign batch, LRU
/// baselines first, iTP+xPTP second.
pub fn run(campaign: &Campaign, scale: &RunScale) -> Vec<ConsolidationCell> {
    let suite = suite(scale);
    let config = SystemConfig::asplos25();
    let tenants = tenant_counts();
    let mut requests = Vec::new();
    for &t in &tenants {
        for preset in [Preset::Lru, Preset::ItpXptp] {
            requests.extend(
                suite
                    .iter()
                    .map(|w| SimRequest::single(&config, preset, &consolidate(w, t))),
            );
        }
    }
    let outputs = campaign.run_batch(requests);
    let per_point = 2 * suite.len();
    tenants
        .into_iter()
        .zip(outputs.chunks(per_point))
        .map(|(t, outs)| {
            let (base, prop) = outs.split_at(suite.len());
            cell(t, base, prop)
        })
        .collect()
}

fn mean(xs: impl Iterator<Item = f64>) -> f64 {
    let xs: Vec<f64> = xs.collect();
    xs.iter().sum::<f64>() / xs.len().max(1) as f64
}

fn cell(tenants: u16, base: &[SimulationOutput], prop: &[SimulationOutput]) -> ConsolidationCell {
    let ups: Vec<f64> = prop
        .iter()
        .zip(base)
        .map(|(o, b)| o.speedup_pct_over(b) / 100.0)
        .collect();
    ConsolidationCell {
        tenants,
        geomean_pct: geomean_speedup(&ups) * 100.0,
        baseline_walks_pki: mean(
            base.iter()
                .map(|o| o.walker.walks as f64 * 1000.0 / o.instructions() as f64),
        ),
        baseline_stlb_mpki: mean(base.iter().map(SimulationOutput::stlb_mpki)),
    }
}

/// Formats the sweep as an aligned table.
pub fn format_cells(cells: &[ConsolidationCell]) -> String {
    let mut out = format!(
        "{:<8} {:>10} {:>10} {:>10}\n",
        "tenants", "uplift", "walks/ki", "STLB MPKI"
    );
    for c in cells {
        out.push_str(&format!(
            "{:<8} {:>+9.2}% {:>10.2} {:>10.2}\n",
            c.tenants, c.geomean_pct, c.baseline_walks_pki, c.baseline_stlb_mpki
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simcache::SimCache;

    fn smoke_scale() -> RunScale {
        RunScale {
            workloads: 2,
            instructions: 12_000,
            warmup: 3_000,
            ..RunScale::smoke()
        }
    }

    #[test]
    fn sweep_covers_every_tenant_count_and_pressure_grows() {
        let campaign = Campaign::new(smoke_scale(), SimCache::new(None));
        let cells = run(&campaign, &smoke_scale());
        let tenants: Vec<u16> = cells.iter().map(|c| c.tenants).collect();
        assert_eq!(tenants, TENANTS, "one cell per tenant count");
        let single = &cells[0];
        let eight = cells.last().expect("non-empty sweep");
        assert!(
            eight.baseline_walks_pki > single.baseline_walks_pki,
            "8 flushing tenants must out-walk 1 ({} vs {})",
            eight.baseline_walks_pki,
            single.baseline_walks_pki
        );
        for c in &cells {
            assert!(c.geomean_pct.is_finite(), "tenants={}", c.tenants);
        }
    }

    #[test]
    fn formatted_table_has_one_row_per_cell() {
        let cells = vec![ConsolidationCell {
            tenants: 2,
            geomean_pct: 1.5,
            baseline_walks_pki: 10.0,
            baseline_stlb_mpki: 3.0,
        }];
        let table = format_cells(&cells);
        assert_eq!(table.lines().count(), 2, "header plus one row");
        assert!(table.contains("+1.50%"));
    }
}
