//! The motivation studies of Section 3 (Figures 1–4).

use crate::campaign::{Campaign, SimRequest};
use itpx_core::presets::PolicyBundle;
use itpx_core::Preset;
use itpx_cpu::{Simulation, SimulationOutput, SystemConfig};
use itpx_policy::{Lru, ProbKeepInstrLru};
use itpx_trace::{qualcomm_like_suite, spec_like_suite, WorkloadSpec};
use itpx_types::MpkiBreakdown;

/// The ITLB sizes swept by Figure 1.
pub const FIG1_ITLB_SIZES: [usize; 5] = [8, 64, 128, 512, 1024];

/// The keep-instruction probabilities of Figure 3.
pub const FIG3_PROBABILITIES: [f64; 4] = [0.2, 0.4, 0.6, 0.8];

fn motivation_suites(scale: &crate::harness::RunScale) -> [(&'static str, Vec<WorkloadSpec>); 2] {
    let apply = |ws: Vec<WorkloadSpec>| ws.into_iter().map(|w| scale.apply(w)).collect();
    [
        ("server", apply(qualcomm_like_suite(scale.workloads))),
        ("spec", apply(spec_like_suite((scale.workloads / 2).max(2)))),
    ]
}

/// One Figure 1 cell: mean fraction of cycles spent on instruction
/// address translation for a suite at one ITLB size.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1Cell {
    /// Suite name (`server` / `spec`).
    pub suite: &'static str,
    /// ITLB entries.
    pub itlb_entries: usize,
    /// Per-workload stall fractions.
    pub fractions: Vec<f64>,
    /// Mean stall fraction.
    pub mean: f64,
}

/// Runs Figure 1: instruction-address-translation cycles vs ITLB size.
pub fn fig01(campaign: &Campaign, config: &SystemConfig) -> Vec<Fig1Cell> {
    let suites = motivation_suites(campaign.scale());
    // Every (suite, ITLB size, workload) simulation goes up in one batch.
    let mut requests = Vec::new();
    let mut spans: Vec<(&'static str, usize, usize)> = Vec::new();
    for (name, suite) in &suites {
        for entries in FIG1_ITLB_SIZES {
            let cfg = config.with_itlb_entries(entries);
            spans.push((name, entries, suite.len()));
            requests.extend(
                suite
                    .iter()
                    .map(|w| SimRequest::single(&cfg, Preset::Lru, w)),
            );
        }
    }
    let outputs = campaign.run_batch(requests);
    let mut cells = Vec::new();
    let mut offset = 0;
    for (name, entries, len) in spans {
        let fractions: Vec<f64> = outputs[offset..offset + len]
            .iter()
            .map(|o| o.itrans_stall_fraction())
            .collect();
        offset += len;
        let mean = fractions.iter().sum::<f64>() / fractions.len() as f64;
        cells.push(Fig1Cell {
            suite: name,
            itlb_entries: entries,
            fractions,
            mean,
        });
    }
    cells
}

/// One Figure 2 row: per-workload STLB instruction MPKI.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2Row {
    /// Suite name.
    pub suite: &'static str,
    /// Per-workload instruction MPKI at the STLB.
    pub impki: Vec<f64>,
    /// Mean.
    pub mean: f64,
}

/// Runs Figure 2: STLB MPKI for instruction references, server vs SPEC.
pub fn fig02(campaign: &Campaign, config: &SystemConfig) -> Vec<Fig2Row> {
    let suites = motivation_suites(campaign.scale());
    let requests: Vec<SimRequest> = suites
        .iter()
        .flat_map(|(_, suite)| {
            suite
                .iter()
                .map(|w| SimRequest::single(config, Preset::Lru, w))
        })
        .collect();
    let outputs = campaign.run_batch(requests);
    let mut offset = 0;
    suites
        .iter()
        .map(|(name, suite)| {
            let impki: Vec<f64> = outputs[offset..offset + suite.len()]
                .iter()
                .map(|o| o.stlb_breakdown().instr)
                .collect();
            offset += suite.len();
            let mean = impki.iter().sum::<f64>() / impki.len() as f64;
            Fig2Row {
                suite: name,
                impki,
                mean,
            }
        })
        .collect()
}

fn prob_bundle(config: &SystemConfig, p: f64, seed: u64) -> PolicyBundle {
    let d = config.dims();
    PolicyBundle {
        stlb: ProbKeepInstrLru::new(d.stlb.0, d.stlb.1, p, seed).into(),
        l2c: Lru::new(d.l2c.0, d.l2c.1).into(),
        llc: Lru::new(d.llc.0, d.llc.1).into(),
        monitor: None,
    }
}

/// One Figure 3 column: IPC improvement of probability-P keep-instruction
/// LRU over plain LRU.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Column {
    /// The probability `P` of victimizing a data translation.
    pub p: f64,
    /// Per-workload IPC improvements, percent.
    pub improvements: Vec<f64>,
    /// Geometric-mean improvement, percent.
    pub geomean: f64,
}

/// Runs Figure 3 on the server suite.
///
/// The LRU baseline is campaign-cached; the probability-P columns build
/// hand-rolled policy bundles, which have no stable cache identity, so
/// they run on the campaign's sweep directly.
pub fn fig03(campaign: &Campaign, config: &SystemConfig) -> Vec<Fig3Column> {
    let scale = campaign.scale();
    let suite: Vec<_> = qualcomm_like_suite(scale.workloads)
        .into_iter()
        .map(|w| scale.apply(w))
        .collect();
    let base = campaign.run_batch(
        suite
            .iter()
            .map(|w| SimRequest::single(config, Preset::Lru, w))
            .collect(),
    );
    FIG3_PROBABILITIES
        .iter()
        .map(|&p| {
            let outs = campaign.sweep().run(suite.clone(), |w| {
                let bundle = prob_bundle(config, p, w.seed ^ 0x9);
                Simulation::custom(config, bundle, format!("P={p}"), std::slice::from_ref(w)).run()
            });
            let improvements: Vec<f64> = outs
                .iter()
                .zip(&base)
                .map(|(o, b)| o.speedup_pct_over(b))
                .collect();
            let geomean = itpx_types::stats::geomean_speedup(
                &improvements.iter().map(|x| x / 100.0).collect::<Vec<_>>(),
            ) * 100.0;
            Fig3Column {
                p,
                improvements,
                geomean,
            }
        })
        .collect()
}

/// One Figure 4 bar group: the four-class MPKI breakdown of a cache level
/// under one STLB policy.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Bar {
    /// `"L2C"` or `"LLC"`.
    pub level: &'static str,
    /// `"LRU"` or `"KeepInstr(P=0.8)"`.
    pub stlb_policy: &'static str,
    /// Mean MPKI breakdown across the suite.
    pub breakdown: MpkiBreakdown,
}

fn mean_breakdown(
    outs: &[SimulationOutput],
    f: impl Fn(&SimulationOutput) -> MpkiBreakdown,
) -> MpkiBreakdown {
    let n = outs.len() as f64;
    let mut acc = MpkiBreakdown::default();
    for o in outs {
        let b = f(o);
        acc.data += b.data / n;
        acc.instr += b.instr / n;
        acc.data_pte += b.data_pte / n;
        acc.instr_pte += b.instr_pte / n;
    }
    acc
}

/// Runs Figure 4: L2C/LLC MPKI breakdowns under LRU vs keep-instructions
/// (P = 0.8) at the STLB. As in [`fig03`], only the LRU side is cacheable.
pub fn fig04(campaign: &Campaign, config: &SystemConfig) -> Vec<Fig4Bar> {
    let scale = campaign.scale();
    let suite: Vec<_> = qualcomm_like_suite(scale.workloads)
        .into_iter()
        .map(|w| scale.apply(w))
        .collect();
    let lru = campaign.run_batch(
        suite
            .iter()
            .map(|w| SimRequest::single(config, Preset::Lru, w))
            .collect(),
    );
    let keep = campaign.sweep().run(suite, |w| {
        let bundle = prob_bundle(config, 0.8, w.seed ^ 0x4);
        Simulation::custom(config, bundle, "KeepInstr(P=0.8)", std::slice::from_ref(w)).run()
    });
    vec![
        Fig4Bar {
            level: "L2C",
            stlb_policy: "LRU",
            breakdown: mean_breakdown(&lru, |o| o.l2c_breakdown()),
        },
        Fig4Bar {
            level: "L2C",
            stlb_policy: "KeepInstr(P=0.8)",
            breakdown: mean_breakdown(&keep, |o| o.l2c_breakdown()),
        },
        Fig4Bar {
            level: "LLC",
            stlb_policy: "LRU",
            breakdown: mean_breakdown(&lru, |o| o.llc_breakdown()),
        },
        Fig4Bar {
            level: "LLC",
            stlb_policy: "KeepInstr(P=0.8)",
            breakdown: mean_breakdown(&keep, |o| o.llc_breakdown()),
        },
    ]
}
