//! Figures 9 and 10: MPKI and average miss latency at the STLB/L2C/LLC
//! per policy (9a/9b), and the STLB instruction/data MPKI breakdown under
//! LRU vs iTP (10).

use crate::campaign::{Campaign, SimRequest};
use itpx_core::Preset;
use itpx_cpu::{SimulationOutput, SystemConfig};
use itpx_trace::{qualcomm_like_suite, smt_suite};

/// Per-structure averages for one policy.
#[derive(Debug, Clone, PartialEq)]
pub struct StructureRow {
    /// Policy name.
    pub policy: String,
    /// Mean STLB MPKI.
    pub stlb_mpki: f64,
    /// Mean STLB miss latency (cycles).
    pub stlb_lat: f64,
    /// Mean L2C MPKI.
    pub l2c_mpki: f64,
    /// Mean L2C miss latency.
    pub l2c_lat: f64,
    /// Mean L2C MPKI due to data-PTE accesses (the paper's §6.2 claim:
    /// 1.0 → 0.4 under iTP+xPTP).
    pub l2c_data_pte_mpki: f64,
    /// Mean LLC MPKI.
    pub llc_mpki: f64,
    /// Mean LLC miss latency.
    pub llc_lat: f64,
    /// Mean STLB instruction MPKI (Figure 10).
    pub stlb_impki: f64,
    /// Mean STLB data MPKI (Figure 10).
    pub stlb_dmpki: f64,
}

fn averages(policy: &str, outs: &[SimulationOutput]) -> StructureRow {
    let n = outs.len() as f64;
    let mut r = StructureRow {
        policy: policy.to_string(),
        stlb_mpki: 0.0,
        stlb_lat: 0.0,
        l2c_mpki: 0.0,
        l2c_lat: 0.0,
        l2c_data_pte_mpki: 0.0,
        llc_mpki: 0.0,
        llc_lat: 0.0,
        stlb_impki: 0.0,
        stlb_dmpki: 0.0,
    };
    for o in outs {
        let sb = o.stlb_breakdown();
        r.stlb_mpki += o.stlb_mpki() / n;
        r.stlb_lat += o.stlb.avg_miss_latency() / n;
        r.l2c_mpki += o.l2c_mpki() / n;
        r.l2c_lat += o.l2c.avg_miss_latency() / n;
        r.l2c_data_pte_mpki += o.l2c_breakdown().data_pte / n;
        r.llc_mpki += o.llc_mpki() / n;
        r.llc_lat += o.llc.avg_miss_latency() / n;
        r.stlb_impki += sb.instr / n;
        r.stlb_dmpki += sb.data / n;
    }
    r
}

/// Runs the per-structure characterization for every evaluated preset.
pub fn run(campaign: &Campaign, config: &SystemConfig, smt: bool) -> Vec<StructureRow> {
    let scale = campaign.scale();
    let requests: Vec<SimRequest> = if smt {
        let pairs: Vec<_> = smt_suite(scale.smt_pairs)
            .into_iter()
            .map(|p| scale.apply_pair(p))
            .collect();
        Preset::EVALUATED
            .iter()
            .flat_map(|&preset| {
                pairs
                    .iter()
                    .map(move |p| SimRequest::smt(config, preset, p))
            })
            .collect()
    } else {
        let suite: Vec<_> = qualcomm_like_suite(scale.workloads)
            .into_iter()
            .map(|w| scale.apply(w))
            .collect();
        Preset::EVALUATED
            .iter()
            .flat_map(|&preset| {
                suite
                    .iter()
                    .map(move |w| SimRequest::single(config, preset, w))
            })
            .collect()
    };
    let per_preset = requests.len() / Preset::EVALUATED.len();
    let outputs = campaign.run_batch(requests);
    Preset::EVALUATED
        .iter()
        .zip(outputs.chunks(per_preset))
        .map(|(preset, outs)| averages(preset.name(), outs))
        .collect()
}

/// Formats the Figure 9/10 table.
pub fn format_rows(rows: &[StructureRow]) -> String {
    let mut s = String::from(
        "policy          STLB_MPKI  lat     i/d-MPKI        L2C_MPKI  lat     dPTE   LLC_MPKI  lat\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{:<15} {:<10.2} {:<7.1} {:<6.2}/{:<8.2} {:<9.2} {:<7.1} {:<6.2} {:<9.2} {:<7.1}\n",
            r.policy,
            r.stlb_mpki,
            r.stlb_lat,
            r.stlb_impki,
            r.stlb_dmpki,
            r.l2c_mpki,
            r.l2c_lat,
            r.l2c_data_pte_mpki,
            r.llc_mpki,
            r.llc_lat,
        ));
    }
    s
}
