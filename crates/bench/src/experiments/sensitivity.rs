//! The sensitivity studies of Sections 6.3–6.6 (Figures 11–14) and the
//! parameter ablations DESIGN.md calls out.

use crate::harness::{RunScale, Sweep};
use itpx_core::presets::{BuildConfig, LlcChoice};
use itpx_core::{ItpParams, Preset, XptpParams};
use itpx_cpu::{Simulation, SystemConfig};
use itpx_trace::{qualcomm_like_suite, smt_suite, SmtPairSpec, WorkloadSpec};
use itpx_types::stats::geomean_speedup;

fn geomean_pct(improvements: &[f64]) -> f64 {
    geomean_speedup(&improvements.iter().map(|x| x / 100.0).collect::<Vec<_>>()) * 100.0
}

fn suite(scale: &RunScale) -> Vec<WorkloadSpec> {
    qualcomm_like_suite(scale.workloads)
        .into_iter()
        .map(|w| scale.apply(w))
        .collect()
}

fn pairs(scale: &RunScale) -> Vec<SmtPairSpec> {
    smt_suite(scale.smt_pairs)
        .into_iter()
        .map(|p| scale.apply_pair(p))
        .collect()
}

/// Geomean uplift of `preset` over LRU under one configuration/build.
fn uplift(
    config: &SystemConfig,
    build: &BuildConfig,
    preset: Preset,
    scale: &RunScale,
    smt: bool,
) -> f64 {
    let sweep = Sweep::new(scale.host_threads);
    if smt {
        let ps = pairs(scale);
        let base = sweep.run(ps.clone(), |p| {
            Simulation::smt(config, Preset::Lru, p)
                .build_config(*build)
                .run()
        });
        let outs = sweep.run(ps, |p| {
            Simulation::smt(config, preset, p)
                .build_config(*build)
                .run()
        });
        geomean_pct(
            &outs
                .iter()
                .zip(&base)
                .map(|(o, b)| o.speedup_pct_over(b))
                .collect::<Vec<_>>(),
        )
    } else {
        let ws = suite(scale);
        let base = sweep.run(ws.clone(), |w| {
            Simulation::single_thread(config, Preset::Lru, w)
                .build_config(*build)
                .run()
        });
        let outs = sweep.run(ws, |w| {
            Simulation::single_thread(config, preset, w)
                .build_config(*build)
                .run()
        });
        geomean_pct(
            &outs
                .iter()
                .zip(&base)
                .map(|(o, b)| o.speedup_pct_over(b))
                .collect::<Vec<_>>(),
        )
    }
}

/// One Figure 11 cell: geomean uplift of a proposal under an LLC policy.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig11Cell {
    /// LLC replacement policy.
    pub llc: LlcChoice,
    /// Proposal (iTP or iTP+xPTP).
    pub preset: Preset,
    /// Whether this is the SMT scenario.
    pub smt: bool,
    /// Geomean IPC uplift over LRU-STLB/LRU-L2C with the same LLC policy.
    pub geomean_pct: f64,
}

/// Runs Figure 11: sensitivity to the LLC replacement policy.
pub fn fig11(config: &SystemConfig, scale: &RunScale, smt: bool) -> Vec<Fig11Cell> {
    let mut cells = Vec::new();
    for llc in LlcChoice::ALL {
        let build = BuildConfig {
            llc,
            ..BuildConfig::default()
        };
        for preset in [Preset::Itp, Preset::ItpXptp] {
            cells.push(Fig11Cell {
                llc,
                preset,
                smt,
                geomean_pct: uplift(config, &build, preset, scale, smt),
            });
        }
    }
    cells
}

/// The ITLB sizes of Figure 12.
pub const FIG12_ITLB_SIZES: [usize; 4] = [1024, 512, 128, 64];

/// One Figure 12 cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig12Cell {
    /// ITLB entries.
    pub itlb_entries: usize,
    /// Proposal.
    pub preset: Preset,
    /// SMT scenario?
    pub smt: bool,
    /// Geomean uplift over LRU at the same ITLB size.
    pub geomean_pct: f64,
}

/// Runs Figure 12: sensitivity to ITLB size.
pub fn fig12(config: &SystemConfig, scale: &RunScale, smt: bool) -> Vec<Fig12Cell> {
    let mut cells = Vec::new();
    for entries in FIG12_ITLB_SIZES {
        let cfg = config.with_itlb_entries(entries);
        for preset in [Preset::Itp, Preset::ItpXptp] {
            cells.push(Fig12Cell {
                itlb_entries: entries,
                preset,
                smt,
                geomean_pct: uplift(&cfg, &BuildConfig::default(), preset, scale, smt),
            });
        }
    }
    cells
}

/// The 2 MiB-page footprint fractions of Figure 13.
pub const FIG13_FRACTIONS: [f64; 4] = [0.0, 0.1, 0.5, 1.0];

/// One Figure 13 cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig13Cell {
    /// Fraction of code+data footprint on 2 MiB pages.
    pub fraction: f64,
    /// Policy.
    pub preset: Preset,
    /// SMT scenario?
    pub smt: bool,
    /// Geomean uplift over LRU at the same page-size mix.
    pub geomean_pct: f64,
}

/// Runs Figure 13: performance with part of the footprint on 2 MiB pages.
pub fn fig13(config: &SystemConfig, scale: &RunScale, smt: bool) -> Vec<Fig13Cell> {
    let mut cells = Vec::new();
    for fraction in FIG13_FRACTIONS {
        let cfg = config.with_huge_pages(itpx_vm::HugePagePolicy::uniform(
            fraction,
            0x2025 ^ (fraction * 1000.0) as u64,
        ));
        for preset in [Preset::Tdrrip, Preset::Ptp, Preset::Chirp, Preset::ItpXptp] {
            cells.push(Fig13Cell {
                fraction,
                preset,
                smt,
                geomean_pct: uplift(&cfg, &BuildConfig::default(), preset, scale, smt),
            });
        }
    }
    cells
}

/// One Figure 14 bar: an STLB organization's geomean uplift over the
/// baseline 1536-entry unified STLB with LRU everywhere.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig14Bar {
    /// Organization label.
    pub label: String,
    /// SMT scenario?
    pub smt: bool,
    /// Geomean uplift, percent.
    pub geomean_pct: f64,
}

/// Runs Figure 14: unified STLB + iTP+xPTP vs split STLB designs.
pub fn fig14(config: &SystemConfig, scale: &RunScale, smt: bool) -> Vec<Fig14Bar> {
    let sweep = Sweep::new(scale.host_threads);
    let run_one = |cfg: &SystemConfig, preset: Preset| -> Vec<f64> {
        if smt {
            sweep
                .run(pairs(scale), |p| Simulation::smt(cfg, preset, p).run())
                .iter()
                .map(|o| o.ipc())
                .collect()
        } else {
            sweep
                .run(suite(scale), |w| {
                    Simulation::single_thread(cfg, preset, w).run()
                })
                .iter()
                .map(|o| o.ipc())
                .collect()
        }
    };
    let base = run_one(config, Preset::Lru);
    let cases = [
        ("Unified 1536 iTP+xPTP", *config, Preset::ItpXptp),
        (
            "Split 1536 (768i+768d) LRU",
            config.with_split_stlb(true),
            Preset::Lru,
        ),
        (
            "Unified 3072 iTP+xPTP",
            config.with_stlb_entries(3072),
            Preset::ItpXptp,
        ),
        (
            "Split 3072 (1536i+1536d) LRU",
            config.with_stlb_entries(3072).with_split_stlb(true),
            Preset::Lru,
        ),
    ];
    cases
        .into_iter()
        .map(|(label, cfg, preset)| {
            let ipcs = run_one(&cfg, preset);
            let improvements: Vec<f64> = ipcs
                .iter()
                .zip(&base)
                .map(|(i, b)| (i / b - 1.0) * 100.0)
                .collect();
            Fig14Bar {
                label: label.to_string(),
                smt,
                geomean_pct: geomean_pct(&improvements),
            }
        })
        .collect()
}

/// One ablation cell: a parameter setting and the geomean uplift of the
/// proposal using it.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationCell {
    /// Human-readable parameter setting.
    pub setting: String,
    /// Geomean uplift of iTP+xPTP over LRU, percent.
    pub geomean_pct: f64,
}

/// Ablation: iTP's N (insertion depth) and M (data promotion height).
pub fn ablation_nm(config: &SystemConfig, scale: &RunScale) -> Vec<AblationCell> {
    [(2usize, 6usize), (4, 8), (6, 10), (2, 10), (4, 6)]
        .into_iter()
        .map(|(n, m)| {
            let build = BuildConfig {
                itp: ItpParams {
                    n,
                    m,
                    ..ItpParams::default()
                },
                ..BuildConfig::default()
            };
            AblationCell {
                setting: format!("N={n} M={m}"),
                geomean_pct: uplift(config, &build, Preset::ItpXptp, scale, false),
            }
        })
        .collect()
}

/// Ablation: xPTP's K threshold.
pub fn ablation_k(config: &SystemConfig, scale: &RunScale) -> Vec<AblationCell> {
    [2usize, 4, 6, 8]
        .into_iter()
        .map(|k| {
            let build = BuildConfig {
                xptp: XptpParams { k },
                ..BuildConfig::default()
            };
            AblationCell {
                setting: format!("K={k}"),
                geomean_pct: uplift(config, &build, Preset::ItpXptp, scale, false),
            }
        })
        .collect()
}

/// Ablation: the adaptive threshold T1 (misses per 1000-instruction
/// epoch), plus the non-adaptive variant.
pub fn ablation_t1(config: &SystemConfig, scale: &RunScale) -> Vec<AblationCell> {
    let mut cells: Vec<AblationCell> = [0u64, 1, 2, 4, 16]
        .into_iter()
        .map(|t1| {
            let build = BuildConfig {
                t1,
                ..BuildConfig::default()
            };
            AblationCell {
                setting: format!("T1={t1}"),
                geomean_pct: uplift(config, &build, Preset::ItpXptp, scale, false),
            }
        })
        .collect();
    cells.push(AblationCell {
        setting: "static (always on)".to_string(),
        geomean_pct: uplift(
            config,
            &BuildConfig::default(),
            Preset::ItpXptpStatic,
            scale,
            false,
        ),
    });
    cells
}
