//! The sensitivity studies of Sections 6.3–6.6 (Figures 11–14) and the
//! parameter ablations DESIGN.md calls out.
//!
//! Every cell of every figure is expressed as a block of [`SimRequest`]s;
//! a figure submits all of its cells as one campaign batch, so the LRU
//! baselines shared between cells (and between figures) simulate once and
//! are cache hits everywhere else.

use crate::campaign::{Campaign, SimRequest};
use crate::harness::RunScale;
use itpx_core::presets::{BuildConfig, LlcChoice};
use itpx_core::{ItpParams, Preset, XptpParams};
use itpx_cpu::{SimulationOutput, SystemConfig};
use itpx_trace::{qualcomm_like_suite, smt_suite, SmtPairSpec, WorkloadSpec};
use itpx_types::stats::geomean_speedup;

fn geomean_pct(improvements: &[f64]) -> f64 {
    geomean_speedup(&improvements.iter().map(|x| x / 100.0).collect::<Vec<_>>()) * 100.0
}

fn suite(scale: &RunScale) -> Vec<WorkloadSpec> {
    qualcomm_like_suite(scale.workloads)
        .into_iter()
        .map(|w| scale.apply(w))
        .collect()
}

fn pairs(scale: &RunScale) -> Vec<SmtPairSpec> {
    smt_suite(scale.smt_pairs)
        .into_iter()
        .map(|p| scale.apply_pair(p))
        .collect()
}

/// The requests of one uplift cell: a block of LRU baselines followed by
/// an equal-sized block of `preset` runs, under one configuration/build.
fn uplift_requests(
    config: &SystemConfig,
    build: &BuildConfig,
    preset: Preset,
    scale: &RunScale,
    smt: bool,
) -> Vec<SimRequest> {
    let mut reqs = Vec::new();
    for p in [Preset::Lru, preset] {
        if smt {
            reqs.extend(
                pairs(scale)
                    .iter()
                    .map(|pair| SimRequest::smt(config, p, pair).with_build(*build)),
            );
        } else {
            reqs.extend(
                suite(scale)
                    .iter()
                    .map(|w| SimRequest::single(config, p, w).with_build(*build)),
            );
        }
    }
    reqs
}

/// Geomean uplift from one cell's outputs (first half baseline, second
/// half proposal).
fn uplift_from(outs: &[SimulationOutput]) -> f64 {
    let half = outs.len() / 2;
    let (base, prop) = outs.split_at(half);
    geomean_pct(
        &prop
            .iter()
            .zip(base)
            .map(|(o, b)| o.speedup_pct_over(b))
            .collect::<Vec<_>>(),
    )
}

/// Submits every cell's requests as one batch and returns per-cell
/// uplifts, in cell order.
fn batched_uplifts(campaign: &Campaign, cells: Vec<Vec<SimRequest>>) -> Vec<f64> {
    let lens: Vec<usize> = cells.iter().map(Vec::len).collect();
    let outputs = campaign.run_batch(cells.into_iter().flatten().collect());
    let mut uplifts = Vec::with_capacity(lens.len());
    let mut offset = 0;
    for len in lens {
        uplifts.push(uplift_from(&outputs[offset..offset + len]));
        offset += len;
    }
    uplifts
}

/// One Figure 11 cell: geomean uplift of a proposal under an LLC policy.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig11Cell {
    /// LLC replacement policy.
    pub llc: LlcChoice,
    /// Proposal (iTP or iTP+xPTP).
    pub preset: Preset,
    /// Whether this is the SMT scenario.
    pub smt: bool,
    /// Geomean IPC uplift over LRU-STLB/LRU-L2C with the same LLC policy.
    pub geomean_pct: f64,
}

/// Runs Figure 11: sensitivity to the LLC replacement policy.
pub fn fig11(campaign: &Campaign, config: &SystemConfig, smt: bool) -> Vec<Fig11Cell> {
    let scale = campaign.scale();
    let mut labels = Vec::new();
    let mut cells = Vec::new();
    for llc in LlcChoice::ALL {
        let build = BuildConfig {
            llc,
            ..BuildConfig::default()
        };
        for preset in [Preset::Itp, Preset::ItpXptp] {
            labels.push((llc, preset));
            cells.push(uplift_requests(config, &build, preset, scale, smt));
        }
    }
    labels
        .into_iter()
        .zip(batched_uplifts(campaign, cells))
        .map(|((llc, preset), geomean_pct)| Fig11Cell {
            llc,
            preset,
            smt,
            geomean_pct,
        })
        .collect()
}

/// The ITLB sizes of Figure 12.
pub const FIG12_ITLB_SIZES: [usize; 4] = [1024, 512, 128, 64];

/// One Figure 12 cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig12Cell {
    /// ITLB entries.
    pub itlb_entries: usize,
    /// Proposal.
    pub preset: Preset,
    /// SMT scenario?
    pub smt: bool,
    /// Geomean uplift over LRU at the same ITLB size.
    pub geomean_pct: f64,
}

/// Runs Figure 12: sensitivity to ITLB size.
pub fn fig12(campaign: &Campaign, config: &SystemConfig, smt: bool) -> Vec<Fig12Cell> {
    let scale = campaign.scale();
    let mut labels = Vec::new();
    let mut cells = Vec::new();
    for entries in FIG12_ITLB_SIZES {
        let cfg = config.with_itlb_entries(entries);
        for preset in [Preset::Itp, Preset::ItpXptp] {
            labels.push((entries, preset));
            cells.push(uplift_requests(
                &cfg,
                &BuildConfig::default(),
                preset,
                scale,
                smt,
            ));
        }
    }
    labels
        .into_iter()
        .zip(batched_uplifts(campaign, cells))
        .map(|((itlb_entries, preset), geomean_pct)| Fig12Cell {
            itlb_entries,
            preset,
            smt,
            geomean_pct,
        })
        .collect()
}

/// The 2 MiB-page footprint fractions of Figure 13.
pub const FIG13_FRACTIONS: [f64; 4] = [0.0, 0.1, 0.5, 1.0];

/// One Figure 13 cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig13Cell {
    /// Fraction of code+data footprint on 2 MiB pages.
    pub fraction: f64,
    /// Policy.
    pub preset: Preset,
    /// SMT scenario?
    pub smt: bool,
    /// Geomean uplift over LRU at the same page-size mix.
    pub geomean_pct: f64,
}

/// Runs Figure 13: performance with part of the footprint on 2 MiB pages.
pub fn fig13(campaign: &Campaign, config: &SystemConfig, smt: bool) -> Vec<Fig13Cell> {
    let scale = campaign.scale();
    let mut labels = Vec::new();
    let mut cells = Vec::new();
    for fraction in FIG13_FRACTIONS {
        let cfg = config.with_huge_pages(itpx_vm::HugePagePolicy::uniform(
            fraction,
            0x2025 ^ (fraction * 1000.0) as u64,
        ));
        for preset in [Preset::Tdrrip, Preset::Ptp, Preset::Chirp, Preset::ItpXptp] {
            labels.push((fraction, preset));
            cells.push(uplift_requests(
                &cfg,
                &BuildConfig::default(),
                preset,
                scale,
                smt,
            ));
        }
    }
    labels
        .into_iter()
        .zip(batched_uplifts(campaign, cells))
        .map(|((fraction, preset), geomean_pct)| Fig13Cell {
            fraction,
            preset,
            smt,
            geomean_pct,
        })
        .collect()
}

/// One Figure 14 bar: an STLB organization's geomean uplift over the
/// baseline 1536-entry unified STLB with LRU everywhere.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig14Bar {
    /// Organization label.
    pub label: String,
    /// SMT scenario?
    pub smt: bool,
    /// Geomean uplift, percent.
    pub geomean_pct: f64,
}

/// Runs Figure 14: unified STLB + iTP+xPTP vs split STLB designs.
pub fn fig14(campaign: &Campaign, config: &SystemConfig, smt: bool) -> Vec<Fig14Bar> {
    let scale = campaign.scale();
    let block = |cfg: &SystemConfig, preset: Preset| -> Vec<SimRequest> {
        if smt {
            pairs(scale)
                .iter()
                .map(|p| SimRequest::smt(cfg, preset, p))
                .collect()
        } else {
            suite(scale)
                .iter()
                .map(|w| SimRequest::single(cfg, preset, w))
                .collect()
        }
    };
    let cases = [
        ("Unified 1536 iTP+xPTP", *config, Preset::ItpXptp),
        (
            "Split 1536 (768i+768d) LRU",
            config.with_split_stlb(true),
            Preset::Lru,
        ),
        (
            "Unified 3072 iTP+xPTP",
            config.with_stlb_entries(3072),
            Preset::ItpXptp,
        ),
        (
            "Split 3072 (1536i+1536d) LRU",
            config.with_stlb_entries(3072).with_split_stlb(true),
            Preset::Lru,
        ),
    ];
    // One batch: the shared baseline block followed by one block per case.
    let mut requests = block(config, Preset::Lru);
    let per_block = requests.len();
    for (_, cfg, preset) in &cases {
        requests.extend(block(cfg, *preset));
    }
    let outputs = campaign.run_batch(requests);
    let base: Vec<f64> = outputs[..per_block].iter().map(|o| o.ipc()).collect();
    cases
        .iter()
        .enumerate()
        .map(|(i, (label, _, _))| {
            let ipcs: Vec<f64> = outputs[(i + 1) * per_block..(i + 2) * per_block]
                .iter()
                .map(|o| o.ipc())
                .collect();
            let improvements: Vec<f64> = ipcs
                .iter()
                .zip(&base)
                .map(|(i, b)| (i / b - 1.0) * 100.0)
                .collect();
            Fig14Bar {
                label: label.to_string(),
                smt,
                geomean_pct: geomean_pct(&improvements),
            }
        })
        .collect()
}

/// One ablation cell: a parameter setting and the geomean uplift of the
/// proposal using it.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationCell {
    /// Human-readable parameter setting.
    pub setting: String,
    /// Geomean uplift of iTP+xPTP over LRU, percent.
    pub geomean_pct: f64,
}

fn ablation_cells(
    campaign: &Campaign,
    settings: Vec<(String, BuildConfig, Preset)>,
    config: &SystemConfig,
) -> Vec<AblationCell> {
    let scale = campaign.scale();
    let cells = settings
        .iter()
        .map(|(_, build, preset)| uplift_requests(config, build, *preset, scale, false))
        .collect();
    settings
        .into_iter()
        .zip(batched_uplifts(campaign, cells))
        .map(|((setting, _, _), geomean_pct)| AblationCell {
            setting,
            geomean_pct,
        })
        .collect()
}

/// Ablation: iTP's N (insertion depth) and M (data promotion height).
pub fn ablation_nm(campaign: &Campaign, config: &SystemConfig) -> Vec<AblationCell> {
    let settings = [(2usize, 6usize), (4, 8), (6, 10), (2, 10), (4, 6)]
        .into_iter()
        .map(|(n, m)| {
            let build = BuildConfig {
                itp: ItpParams {
                    n,
                    m,
                    ..ItpParams::default()
                },
                ..BuildConfig::default()
            };
            (format!("N={n} M={m}"), build, Preset::ItpXptp)
        })
        .collect();
    ablation_cells(campaign, settings, config)
}

/// Ablation: xPTP's K threshold.
pub fn ablation_k(campaign: &Campaign, config: &SystemConfig) -> Vec<AblationCell> {
    let settings = [2usize, 4, 6, 8]
        .into_iter()
        .map(|k| {
            let build = BuildConfig {
                xptp: XptpParams { k },
                ..BuildConfig::default()
            };
            (format!("K={k}"), build, Preset::ItpXptp)
        })
        .collect();
    ablation_cells(campaign, settings, config)
}

/// Ablation: the adaptive threshold T1 (misses per 1000-instruction
/// epoch), plus the non-adaptive variant.
pub fn ablation_t1(campaign: &Campaign, config: &SystemConfig) -> Vec<AblationCell> {
    let mut settings: Vec<(String, BuildConfig, Preset)> = [0u64, 1, 2, 4, 16]
        .into_iter()
        .map(|t1| {
            let build = BuildConfig {
                t1,
                ..BuildConfig::default()
            };
            (format!("T1={t1}"), build, Preset::ItpXptp)
        })
        .collect();
    settings.push((
        "static (always on)".to_string(),
        BuildConfig::default(),
        Preset::ItpXptpStatic,
    ));
    ablation_cells(campaign, settings, config)
}
