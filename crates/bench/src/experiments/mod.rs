//! One module per reproduced figure. Each returns structured results so
//! the `fig*` binaries can print them and integration tests can assert
//! the paper's claims on reduced scales.

pub mod calibrate;
pub mod consolidation;
pub mod depth_sweep;
pub mod fig08;
pub mod fig09;
pub mod motivation;
pub mod sensitivity;

pub use calibrate::calibration_table;
