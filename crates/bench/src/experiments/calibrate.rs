//! Workload calibration: per-workload baseline (LRU) characteristics.
//!
//! Not a paper figure, but the tool that keeps the synthetic suites honest:
//! it prints, for each workload, the metrics the paper's Section 3/5
//! characterization fixes — STLB MPKI (total ≥ 1 was the paper's selection
//! bar), its instruction/data split, L2C/LLC MPKI, the fraction of cycles
//! spent on instruction address translation, and IPC — so that profile
//! tuning can be checked against the paper's reported ranges.

use crate::campaign::{Campaign, SimRequest};
use itpx_core::Preset;
use itpx_cpu::{SimulationOutput, SystemConfig};
use itpx_trace::WorkloadSpec;

/// One row of the calibration table.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationRow {
    /// Workload name.
    pub workload: String,
    /// Baseline IPC.
    pub ipc: f64,
    /// Total STLB MPKI.
    pub stlb_mpki: f64,
    /// STLB MPKI due to instruction translations.
    pub stlb_impki: f64,
    /// STLB MPKI due to data translations.
    pub stlb_dmpki: f64,
    /// L2C MPKI.
    pub l2c_mpki: f64,
    /// LLC MPKI.
    pub llc_mpki: f64,
    /// Fraction of cycles stalled on instruction translation.
    pub itrans_frac: f64,
}

impl CalibrationRow {
    fn from(out: &SimulationOutput) -> Self {
        let b = out.stlb_breakdown();
        Self {
            workload: out.threads[0].workload.clone(),
            ipc: out.ipc(),
            stlb_mpki: out.stlb_mpki(),
            stlb_impki: b.instr,
            stlb_dmpki: b.data,
            l2c_mpki: out.l2c_mpki(),
            llc_mpki: out.llc_mpki(),
            itrans_frac: out.itrans_stall_fraction(),
        }
    }
}

/// Runs the LRU baseline over `specs` and returns one row per workload.
pub fn calibration_table(
    campaign: &Campaign,
    config: &SystemConfig,
    specs: &[WorkloadSpec],
) -> Vec<CalibrationRow> {
    let scale = campaign.scale();
    let requests: Vec<SimRequest> = specs
        .iter()
        .map(|w| SimRequest::single(config, Preset::Lru, &scale.apply(w.clone())))
        .collect();
    campaign
        .run_batch(requests)
        .iter()
        .map(CalibrationRow::from)
        .collect()
}

/// Formats rows as an aligned table.
pub fn format_rows(rows: &[CalibrationRow]) -> String {
    let mut s = String::new();
    s.push_str("workload     IPC     STLB    iMPKI   dMPKI   L2C      LLC      itrans%\n");
    for r in rows {
        s.push_str(&format!(
            "{:<12} {:<7.3} {:<7.2} {:<7.3} {:<7.2} {:<8.2} {:<8.2} {:<6.2}\n",
            r.workload,
            r.ipc,
            r.stlb_mpki,
            r.stlb_impki,
            r.stlb_dmpki,
            r.l2c_mpki,
            r.llc_mpki,
            r.itrans_frac * 100.0
        ));
    }
    s
}
