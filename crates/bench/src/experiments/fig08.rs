//! Figure 8: IPC improvement of every Table 2 policy combination over the
//! LRU baseline, for single-thread workloads (8a) and SMT pairs (8b).

use crate::campaign::{Campaign, SimRequest};
use crate::csv::CsvSink;
use crate::report::Distribution;
use itpx_core::Preset;
use itpx_cpu::{SimulationOutput, SystemConfig};
use itpx_trace::{qualcomm_like_suite, smt_suite};

/// Result of one policy column: per-workload improvements plus summary.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyColumn {
    /// Policy name (paper's x-axis label).
    pub policy: String,
    /// Per-workload IPC improvement over LRU, percent.
    pub improvements: Vec<f64>,
    /// Distribution summary (the violin + geomean dot).
    pub summary: Distribution,
}

/// Slices one batch of `(LRU base block, then one block per evaluated
/// preset)` outputs into policy columns, exporting per-run CSV rows in
/// the same order the per-column code used to (base rows first).
fn columns_from(
    outputs: &[SimulationOutput],
    per_column: usize,
    csv_name: &str,
) -> Vec<PolicyColumn> {
    let base = &outputs[..per_column];
    let mut csv = CsvSink::new(csv_name);
    for out in base {
        csv.push(out, None);
    }
    let columns = Preset::EVALUATED[1..]
        .iter()
        .enumerate()
        .map(|(i, preset)| {
            let outs = &outputs[(i + 1) * per_column..(i + 2) * per_column];
            let improvements: Vec<f64> = outs
                .iter()
                .zip(base)
                .map(|(o, b)| {
                    csv.push(o, Some(b));
                    o.speedup_pct_over(b)
                })
                .collect();
            PolicyColumn {
                policy: preset.name().to_string(),
                summary: Distribution::of(&improvements),
                improvements,
            }
        })
        .collect();
    let _ = csv.write_to("target/experiments");
    columns
}

/// Runs Figure 8a (single hardware thread), also exporting per-run rows
/// to `target/experiments/fig08a.csv` (the artifact's `parse_data`
/// equivalent).
pub fn single_thread(campaign: &Campaign, config: &SystemConfig) -> Vec<PolicyColumn> {
    let scale = campaign.scale();
    let workloads: Vec<_> = qualcomm_like_suite(scale.workloads)
        .into_iter()
        .map(|w| scale.apply(w))
        .collect();
    // All (preset × workload) jobs of the figure go up in one batch —
    // EVALUATED[0] is the LRU baseline block.
    let requests: Vec<SimRequest> = Preset::EVALUATED
        .iter()
        .flat_map(|&preset| workloads.iter().map(move |w| (preset, w)))
        .map(|(preset, w)| SimRequest::single(config, preset, w))
        .collect();
    let outputs = campaign.run_batch(requests);
    columns_from(&outputs, workloads.len(), "fig08a")
}

/// Runs Figure 8b (two hardware threads).
pub fn two_threads(campaign: &Campaign, config: &SystemConfig) -> Vec<PolicyColumn> {
    let scale = campaign.scale();
    let pairs: Vec<_> = smt_suite(scale.smt_pairs)
        .into_iter()
        .map(|p| scale.apply_pair(p))
        .collect();
    let requests: Vec<SimRequest> = Preset::EVALUATED
        .iter()
        .flat_map(|&preset| pairs.iter().map(move |p| (preset, p)))
        .map(|(preset, p)| SimRequest::smt(config, preset, p))
        .collect();
    let outputs = campaign.run_batch(requests);
    columns_from(&outputs, pairs.len(), "fig08b")
}

/// Formats columns as the figure's table plus a violin panel (the text
/// rendering of the paper's violin plots).
pub fn format_columns(columns: &[PolicyColumn]) -> String {
    let mut s = String::new();
    for c in columns {
        s.push_str(&format!("{:<14} {}\n", c.policy, c.summary));
    }
    s.push('\n');
    let rows: Vec<(&str, crate::report::Distribution)> = columns
        .iter()
        .map(|c| (c.policy.as_str(), c.summary))
        .collect();
    s.push_str(&crate::plot::violin_panel(&rows, 56));
    s
}
