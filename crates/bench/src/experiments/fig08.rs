//! Figure 8: IPC improvement of every Table 2 policy combination over the
//! LRU baseline, for single-thread workloads (8a) and SMT pairs (8b).

use crate::csv::CsvSink;
use crate::harness::{RunScale, Sweep};
use crate::report::Distribution;
use itpx_core::Preset;
use itpx_cpu::{Simulation, SystemConfig};
use itpx_trace::{qualcomm_like_suite, smt_suite};

/// Result of one policy column: per-workload improvements plus summary.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyColumn {
    /// Policy name (paper's x-axis label).
    pub policy: String,
    /// Per-workload IPC improvement over LRU, percent.
    pub improvements: Vec<f64>,
    /// Distribution summary (the violin + geomean dot).
    pub summary: Distribution,
}

/// Runs Figure 8a (single hardware thread), also exporting per-run rows
/// to `target/experiments/fig08a.csv` (the artifact's `parse_data`
/// equivalent).
pub fn single_thread(config: &SystemConfig, scale: &RunScale) -> Vec<PolicyColumn> {
    let workloads: Vec<_> = qualcomm_like_suite(scale.workloads)
        .into_iter()
        .map(|w| scale.apply(w))
        .collect();
    let sweep = Sweep::new(scale.host_threads);
    // Baselines first.
    let base = sweep.run(workloads.clone(), |w| {
        Simulation::single_thread(config, Preset::Lru, w).run()
    });
    let mut csv = CsvSink::new("fig08a");
    for out in &base {
        csv.push(out, None);
    }
    let columns = Preset::EVALUATED[1..]
        .iter()
        .map(|&preset| {
            let outs = sweep.run(workloads.clone(), |w| {
                Simulation::single_thread(config, preset, w).run()
            });
            let improvements: Vec<f64> = outs
                .iter()
                .zip(&base)
                .map(|(o, b)| {
                    csv.push(o, Some(b));
                    o.speedup_pct_over(b)
                })
                .collect();
            PolicyColumn {
                policy: preset.name().to_string(),
                summary: Distribution::of(&improvements),
                improvements,
            }
        })
        .collect();
    let _ = csv.write_to("target/experiments");
    columns
}

/// Runs Figure 8b (two hardware threads).
pub fn two_threads(config: &SystemConfig, scale: &RunScale) -> Vec<PolicyColumn> {
    let pairs: Vec<_> = smt_suite(scale.smt_pairs)
        .into_iter()
        .map(|p| scale.apply_pair(p))
        .collect();
    let sweep = Sweep::new(scale.host_threads);
    let base = sweep.run(pairs.clone(), |p| {
        Simulation::smt(config, Preset::Lru, p).run()
    });
    let mut csv = CsvSink::new("fig08b");
    for out in &base {
        csv.push(out, None);
    }
    let columns = Preset::EVALUATED[1..]
        .iter()
        .map(|&preset| {
            let outs = sweep.run(pairs.clone(), |p| Simulation::smt(config, preset, p).run());
            let improvements: Vec<f64> = outs
                .iter()
                .zip(&base)
                .map(|(o, b)| {
                    csv.push(o, Some(b));
                    o.speedup_pct_over(b)
                })
                .collect();
            PolicyColumn {
                policy: preset.name().to_string(),
                summary: Distribution::of(&improvements),
                improvements,
            }
        })
        .collect();
    let _ = csv.write_to("target/experiments");
    columns
}

/// Formats columns as the figure's table plus a violin panel (the text
/// rendering of the paper's violin plots).
pub fn format_columns(columns: &[PolicyColumn]) -> String {
    let mut s = String::new();
    for c in columns {
        s.push_str(&format!("{:<14} {}\n", c.policy, c.summary));
    }
    s.push('\n');
    let rows: Vec<(&str, crate::report::Distribution)> = columns
        .iter()
        .map(|c| (c.policy.as_str(), c.summary))
        .collect();
    s.push_str(&crate::plot::violin_panel(&rows, 56));
    s
}
