//! Hierarchy depth and L2C size sweep — the level-chain refactor's
//! bench experiment.
//!
//! The paper evaluates one fixed 3-level machine; the chain makes depth
//! a configuration axis. This sweep runs `{2-level (no LLC), 3-level
//! (Table 1), 4-level (extra L3)} × {L2C sets}` with LRU baselines and
//! iTP+xPTP, answering two questions per point: does iTP+xPTP's uplift
//! survive the depth change, and how much of it does a bigger (or the
//! removed/added) downstream level absorb?
//!
//! Every cell is a block of [`SimRequest`]s through the shared
//! [`Campaign`], so each chain variant keys distinctly in the simcache
//! (depth changes the config fingerprint's stream length) and repeated
//! sweeps are served from cache.

use crate::campaign::{Campaign, SimRequest};
use crate::harness::RunScale;
use itpx_core::Preset;
use itpx_cpu::{SimulationOutput, SystemConfig};
use itpx_mem::HierarchyConfig;
use itpx_trace::{qualcomm_like_suite, WorkloadSpec};
use itpx_types::stats::geomean_speedup;

/// A labeled hierarchy preset: sweep-table name plus its constructor.
pub type ChainVariant = (&'static str, fn() -> HierarchyConfig);

/// The chain variants the sweep covers, shallow to deep.
pub const CHAINS: &[ChainVariant] = &[
    ("2-level", HierarchyConfig::asplos25_no_llc),
    ("3-level", HierarchyConfig::asplos25),
    ("4-level", HierarchyConfig::asplos25_deep),
];

/// L2C set counts the sweep crosses with each chain (1024 is Table 1's
/// 512 KiB).
pub const L2C_SETS: &[usize] = &[512, 1024, 2048];

/// One sweep point: a chain variant crossed with an L2C size.
#[derive(Debug, Clone, PartialEq)]
pub struct DepthCell {
    /// Chain variant label (`2-level`, `3-level`, `4-level`).
    pub chain: &'static str,
    /// L2C sets (8 ways; 1024 = the paper's 512 KiB).
    pub l2c_sets: usize,
    /// Geomean iTP+xPTP IPC uplift over LRU at this point, in percent.
    pub geomean_pct: f64,
    /// Mean LRU-baseline L2C MPKI (how contended the swept level is).
    pub baseline_l2c_mpki: f64,
    /// Mean LRU-baseline DRAM reads per kilo-instruction (what the
    /// levels below the L2C absorb).
    pub baseline_dram_rpki: f64,
}

fn suite(scale: &RunScale) -> Vec<WorkloadSpec> {
    qualcomm_like_suite(scale.workloads)
        .into_iter()
        .map(|w| scale.apply(w))
        .collect()
}

fn config_for(chain: fn() -> HierarchyConfig, l2c_sets: usize) -> SystemConfig {
    let mut config = SystemConfig::asplos25();
    config.hierarchy = chain();
    config.hierarchy.l2c_mut().sets = l2c_sets;
    config
}

fn mean(xs: impl Iterator<Item = f64>) -> f64 {
    let xs: Vec<f64> = xs.collect();
    xs.iter().sum::<f64>() / xs.len().max(1) as f64
}

/// Runs the sweep: every `(chain, L2C size)` point as one campaign
/// batch, LRU baselines first, iTP+xPTP second.
pub fn run(campaign: &Campaign, scale: &RunScale) -> Vec<DepthCell> {
    let suite = suite(scale);
    let mut points = Vec::new();
    let mut requests = Vec::new();
    for &(chain, hierarchy) in CHAINS {
        for &l2c_sets in L2C_SETS {
            let config = config_for(hierarchy, l2c_sets);
            points.push((chain, l2c_sets));
            for preset in [Preset::Lru, Preset::ItpXptp] {
                requests.extend(suite.iter().map(|w| SimRequest::single(&config, preset, w)));
            }
        }
    }
    let outputs = campaign.run_batch(requests);
    let per_point = 2 * suite.len();
    points
        .into_iter()
        .zip(outputs.chunks(per_point))
        .map(|((chain, l2c_sets), outs)| {
            let (base, prop) = outs.split_at(suite.len());
            cell(chain, l2c_sets, base, prop)
        })
        .collect()
}

fn cell(
    chain: &'static str,
    l2c_sets: usize,
    base: &[SimulationOutput],
    prop: &[SimulationOutput],
) -> DepthCell {
    let ups: Vec<f64> = prop
        .iter()
        .zip(base)
        .map(|(o, b)| o.speedup_pct_over(b) / 100.0)
        .collect();
    DepthCell {
        chain,
        l2c_sets,
        geomean_pct: geomean_speedup(&ups) * 100.0,
        baseline_l2c_mpki: mean(base.iter().map(SimulationOutput::l2c_mpki)),
        baseline_dram_rpki: mean(
            base.iter()
                .map(|o| o.dram_reads as f64 * 1000.0 / o.instructions() as f64),
        ),
    }
}

/// Formats the sweep as an aligned table.
pub fn format_cells(cells: &[DepthCell]) -> String {
    let mut out = format!(
        "{:<8} {:>9} {:>10} {:>9} {:>9}\n",
        "chain", "L2C sets", "uplift", "L2C MPKI", "DRAM rpki"
    );
    for c in cells {
        out.push_str(&format!(
            "{:<8} {:>9} {:>+9.2}% {:>9.2} {:>9.2}\n",
            c.chain, c.l2c_sets, c.geomean_pct, c.baseline_l2c_mpki, c.baseline_dram_rpki
        ));
    }
    out
}
