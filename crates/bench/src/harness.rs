//! Parallel sweep machinery shared by all figure reproductions.

use itpx_cpu::SimulationOutput;
use std::sync::atomic::{AtomicUsize, Ordering};

/// How big an experiment run should be.
///
/// The paper simulates 50 M warmup + 100 M measured instructions across
/// 120 single-thread workloads and 75 SMT pairs. The default scale here
/// keeps the full campaign in laptop territory; environment variables
/// raise it toward the paper's:
///
/// * `ITPX_WORKLOADS` — single-thread workloads per suite (default 16),
/// * `ITPX_SMT_PAIRS` — SMT pairs (default 9),
/// * `ITPX_INSTRUCTIONS` — measured instructions (default 300 000),
/// * `ITPX_WARMUP` — warmup instructions (default 100 000),
/// * `ITPX_THREADS` — host threads for parallel runs (default: available
///   parallelism).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunScale {
    /// Single-thread workloads per suite.
    pub workloads: usize,
    /// SMT pairs.
    pub smt_pairs: usize,
    /// Measured instructions per workload.
    pub instructions: u64,
    /// Warmup instructions per workload.
    pub warmup: u64,
    /// Host threads used to parallelize independent simulations.
    pub host_threads: usize,
}

impl RunScale {
    /// Reads the scale from the environment, falling back to defaults.
    /// Values are validated by [`crate::env`]: junk falls back to the
    /// default and out-of-range values clamp, each with a one-time
    /// warning (`ITPX_THREADS=0` would otherwise configure a sweep that
    /// can never run a job).
    pub fn from_env() -> Self {
        let get = |k: &str, d: u64| crate::env::count_from_env(k, d, 1);
        Self {
            workloads: get("ITPX_WORKLOADS", 16) as usize,
            smt_pairs: get("ITPX_SMT_PAIRS", 9) as usize,
            instructions: get("ITPX_INSTRUCTIONS", 300_000),
            warmup: get("ITPX_WARMUP", 100_000),
            host_threads: get(
                "ITPX_THREADS",
                std::thread::available_parallelism()
                    .map(|n| n.get() as u64)
                    .unwrap_or(4),
            ) as usize,
        }
    }

    /// A minimal scale for tests.
    pub fn smoke() -> Self {
        Self {
            workloads: 2,
            smt_pairs: 2,
            instructions: 20_000,
            warmup: 5_000,
            host_threads: 2,
        }
    }

    /// Applies this scale's run lengths to a workload spec.
    pub fn apply(&self, w: itpx_trace::WorkloadSpec) -> itpx_trace::WorkloadSpec {
        w.instructions(self.instructions).warmup(self.warmup)
    }

    /// Applies this scale's run lengths to both members of an SMT pair.
    pub fn apply_pair(&self, mut p: itpx_trace::SmtPairSpec) -> itpx_trace::SmtPairSpec {
        p.a = self.apply(p.a);
        p.b = self.apply(p.b);
        p
    }
}

/// Parks the calling thread for `ms` milliseconds — host scheduling
/// only, used by the sharded executor's store-poll backoff. Simulated
/// results never depend on host timing.
pub fn sleep_ms(ms: u64) {
    std::thread::sleep(std::time::Duration::from_millis(ms));
}

/// Runs a set of independent jobs across host threads, preserving order.
#[derive(Debug)]
pub struct Sweep {
    host_threads: usize,
}

impl Sweep {
    /// Creates a sweep runner using `host_threads` threads.
    pub fn new(host_threads: usize) -> Self {
        Self {
            host_threads: host_threads.max(1),
        }
    }

    /// Maps `jobs` through `f` in parallel, returning results in job order.
    pub fn run<J, F>(&self, jobs: Vec<J>, f: F) -> Vec<SimulationOutput>
    where
        J: Send + Sync,
        F: Fn(&J) -> SimulationOutput + Sync,
    {
        self.run_generic(jobs, f)
    }

    /// Generic parallel map preserving input order.
    ///
    /// Jobs are claimed from a frozen `Vec` through a single atomic
    /// cursor — no lock is held while claiming or while publishing a
    /// result. Each worker buffers `(index, result)` pairs locally and the
    /// buffers are merged after all workers join, so execution is
    /// contention-free regardless of how uneven the per-job runtimes are.
    pub fn run_generic<J, R, F>(&self, jobs: Vec<J>, f: F) -> Vec<R>
    where
        J: Send + Sync,
        R: Send,
        F: Fn(&J) -> R + Sync,
    {
        let n = jobs.len();
        let cursor = AtomicUsize::new(0);
        let workers = self.host_threads.min(n.max(1));
        let buffers: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            local.push((i, f(&jobs[i])));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sweep worker panicked"))
                .collect()
        });
        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (i, r) in buffers.into_iter().flatten() {
            results[i] = Some(r);
        }
        results
            .into_iter()
            .map(|r| r.expect("every index below n was claimed exactly once"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_preserves_order() {
        let sweep = Sweep::new(4);
        let out: Vec<usize> = sweep.run_generic((0..32).collect(), |&j| j * 2);
        assert_eq!(out, (0..32).map(|j| j * 2).collect::<Vec<_>>());
    }

    #[test]
    fn scale_applies_lengths() {
        let s = RunScale::smoke();
        let w = s.apply(itpx_trace::WorkloadSpec::server_like(1));
        assert_eq!(w.instructions, 20_000);
        assert_eq!(w.warmup, 5_000);
    }

    #[test]
    fn env_overrides_are_read() {
        // Only checks the default path is sane; env mutation in tests
        // would race with other tests.
        let s = RunScale::from_env();
        assert!(s.workloads >= 1);
        assert!(s.host_threads >= 1);
    }
}
