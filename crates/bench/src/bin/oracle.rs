//! STLB replacement headroom study: Belady's MIN vs LRU on the page-access
//! streams of the synthetic suites.
//!
//! This bounds what *any* STLB replacement policy could achieve. The
//! split streams show each side's intrinsic headroom (near zero for
//! instructions: the code working set fits the STLB in isolation); the
//! unified stream shows the cross-stream contention headroom — which is
//! exactly the pool iTP's instruction prioritization draws from.
//!
//! ```sh
//! cargo run -p itpx-bench --release --bin oracle
//! ```

use itpx_bench::{Report, RunScale};
use itpx_trace::{qualcomm_like_suite, replay_min_and_lru, tlb_key_streams, TraceGenerator};

fn main() {
    let scale = RunScale::from_env();
    let mut report = Report::new("Oracle - Belady MIN vs LRU at the STLB (page streams)");
    report.line("headroom = fraction of LRU misses a clairvoyant policy avoids");
    report.line("");
    report.line(format!(
        "{:<10} {:>12} {:>12} {:>12} {:>10}",
        "workload", "stream", "LRU misses", "MIN misses", "headroom"
    ));
    for spec in qualcomm_like_suite(scale.workloads.min(8)) {
        let n = scale.instructions as usize;
        let (code, data, unified) = tlb_key_streams(TraceGenerator::new(&spec).take(n));
        for (label, stream) in [("instr", &code), ("data", &data), ("unified", &unified)] {
            let r = replay_min_and_lru(stream, 128, 12);
            report.line(format!(
                "{:<10} {:>12} {:>12} {:>12} {:>9.1}%",
                spec.name,
                label,
                r.lru_misses,
                r.min_misses,
                r.headroom() * 100.0
            ));
        }
    }
    report.finish();
}
