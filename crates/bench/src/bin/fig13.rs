//! Reproduces Figure 13: policies under 4 KiB + 2 MiB page mixes.

use itpx_bench::experiments::sensitivity;
use itpx_bench::{Report, RunScale};
use itpx_cpu::SystemConfig;

fn main() {
    let scale = RunScale::from_env();
    let config = SystemConfig::asplos25();
    let mut report = Report::new("Figure 13 - allocating code and data on 2MB pages");
    report.line("paper: all gains shrink as the 2MB fraction grows; iTP+xPTP stays on top");
    report.line("");
    for smt in [false, true] {
        report.line(if smt {
            "(b) two hardware threads"
        } else {
            "(a) single hardware thread"
        });
        for cell in sensitivity::fig13(&config, &scale, smt) {
            report.row(
                format!("2MB={:>3.0}% {}", cell.fraction * 100.0, cell.preset),
                format!("{:+.2}%", cell.geomean_pct),
            );
        }
        report.line("");
    }
    report.finish();
}
