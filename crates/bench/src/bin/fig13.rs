//! Reproduces Figure 13: policies under 4 KiB + 2 MiB page mixes.

use itpx_bench::{figures, Campaign};

fn main() {
    figures::fig13(&Campaign::from_env()).finish();
}
