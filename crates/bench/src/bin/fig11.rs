//! Reproduces Figure 11: iTP and iTP+xPTP under LRU / SHiP / Mockingjay
//! LLC replacement.

use itpx_bench::experiments::sensitivity;
use itpx_bench::{Report, RunScale};
use itpx_cpu::SystemConfig;

fn main() {
    let scale = RunScale::from_env();
    let config = SystemConfig::asplos25();
    let mut report = Report::new("Figure 11 - sensitivity to LLC replacement policy");
    report.line("paper (1T): iTP consistent +1.4..2.3; iTP+xPTP +18.9 (LRU), +15.8 (SHiP), +1.6 (Mockingjay)");
    report.line("");
    for smt in [false, true] {
        report.line(if smt {
            "(b) two hardware threads"
        } else {
            "(a) single hardware thread"
        });
        for cell in sensitivity::fig11(&config, &scale, smt) {
            report.row(
                format!("LLC={:<11} {}", cell.llc.name(), cell.preset),
                format!("{:+.2}%", cell.geomean_pct),
            );
        }
        report.line("");
    }
    report.finish();
}
