//! Reproduces Figure 11: iTP and iTP+xPTP under LRU / SHiP / Mockingjay
//! LLC replacement.

use itpx_bench::{figures, Campaign};

fn main() {
    figures::fig11(&Campaign::from_env()).finish();
}
