//! Extension experiment: the paper's Section 7 conjecture that combining
//! xPTP with an Emissary-style code-preserving rule at the L2C outperforms
//! plain iTP+xPTP on big-code workloads.

use itpx_bench::{figures, Campaign};

fn main() {
    figures::ext_emissary(&Campaign::from_env()).finish();
}
