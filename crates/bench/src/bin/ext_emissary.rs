//! Extension experiment: the paper's Section 7 conjecture that combining
//! xPTP with an Emissary-style code-preserving rule at the L2C outperforms
//! plain iTP+xPTP on big-code workloads.

use itpx_bench::{Report, RunScale, Sweep};
use itpx_core::Preset;
use itpx_cpu::{Simulation, SystemConfig};
use itpx_trace::qualcomm_like_suite;
use itpx_types::stats::geomean_speedup;

fn main() {
    let scale = RunScale::from_env();
    let config = SystemConfig::asplos25();
    let sweep = Sweep::new(scale.host_threads);
    let suite: Vec<_> = qualcomm_like_suite(scale.workloads)
        .into_iter()
        .map(|w| scale.apply(w))
        .collect();
    let base = sweep.run(suite.clone(), |w| {
        Simulation::single_thread(&config, Preset::Lru, w).run()
    });

    let mut report = Report::new("Extension - iTP plus xPTP with Emissary-style code preservation");
    report.line("paper section 7: preserving critical code blocks at L2C on top of xPTP");
    report.line("\"has the potential to provide larger performance gains than iTP+xPTP\"");
    report.line("");
    for preset in [Preset::ItpXptp, Preset::ItpXptpEmissary] {
        let outs = sweep.run(suite.clone(), |w| {
            Simulation::single_thread(&config, preset, w).run()
        });
        let ups: Vec<f64> = outs
            .iter()
            .zip(&base)
            .map(|(o, b)| o.speedup_pct_over(b) / 100.0)
            .collect();
        let l1i_mpki: f64 = outs
            .iter()
            .map(|o| o.l1i.mpki(o.instructions()))
            .sum::<f64>()
            / outs.len() as f64;
        report.row(
            preset.name(),
            format!(
                "geomean {:+.2}%   L1I MPKI {:.2}",
                geomean_speedup(&ups) * 100.0,
                l1i_mpki
            ),
        );
    }
    report.finish();
}
