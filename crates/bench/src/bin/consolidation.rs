//! Sweeps tenant consolidation (1/2/4/8 tenants round-robin on one
//! hardware thread), reporting iTP+xPTP's uplift over LRU and the
//! baseline's translation pressure at each point.
//!
//! ```sh
//! cargo run -p itpx-bench --release --bin consolidation
//! ```
//!
//! `ITPX_TENANTS=2` caps the sweep (the CI smoke configuration).

use itpx_bench::{figures, Campaign};

fn main() {
    figures::consolidation_report(&Campaign::from_env()).finish();
}
