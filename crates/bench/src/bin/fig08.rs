//! Reproduces Figure 8: IPC comparison between the state-of-the-art
//! replacement policies and the paper's iTP / iTP+xPTP, over LRU.
//!
//! ```sh
//! cargo run -p itpx-bench --release --bin fig08
//! ```

use itpx_bench::{figures, Campaign};

fn main() {
    figures::fig08(&Campaign::from_env()).finish();
}
