//! Reproduces Figure 8: IPC comparison between the state-of-the-art
//! replacement policies and the paper's iTP / iTP+xPTP, over LRU.
//!
//! ```sh
//! cargo run -p itpx-bench --release --bin fig08
//! ```

use itpx_bench::experiments::fig08;
use itpx_bench::{Report, RunScale};
use itpx_cpu::SystemConfig;

fn main() {
    let scale = RunScale::from_env();
    let config = SystemConfig::asplos25();

    let mut report = Report::new("Figure 8 - IPC improvement over LRU (violin summaries, %)");
    report.line(format!(
        "scale: {} workloads / {} SMT pairs x {} instructions",
        scale.workloads, scale.smt_pairs, scale.instructions
    ));
    report.line("paper geomeans (1T): TDRRIP +9.3, PTP +7.1, CHiRP ~0, iTP +2.2, iTP+xPTP +18.9");
    report.line("");
    report.line("(a) single hardware thread");
    report.line(fig08::format_columns(&fig08::single_thread(
        &config, &scale,
    )));
    report.line("paper geomeans (2T): TDRRIP +8.5, PTP ~0, iTP +0.3, iTP+xPTP +11.4");
    report.line("");
    report.line("(b) two hardware threads");
    report.line(fig08::format_columns(&fig08::two_threads(&config, &scale)));
    report.finish();
}
