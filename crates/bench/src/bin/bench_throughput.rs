//! Measures end-to-end simulated-instruction throughput and folds a
//! `throughput` section into `BENCH_campaign.json`.
//!
//! A fixed workload matrix (three presets × two trace profiles, fixed
//! instruction counts) is driven through the full [`Simulation`] pipeline
//! — trace generation, TLBs, page walks, PSCs, cache chain, policies —
//! and the wall-clock time yields simulated instructions per second
//! (sim-IPS). CI runs this as the data-layout regression gate: the result
//! is compared against the committed `BENCH_throughput_baseline.json`
//! and the binary exits non-zero if throughput drops below the noise
//! margin.
//!
//! ```sh
//! cargo run -p itpx-bench --release --bin bench_throughput
//! ITPX_BLESS_THROUGHPUT=1 cargo run -p itpx-bench --release --bin bench_throughput
//! ```
//!
//! The margin is deliberately generous (default: fail below 50% of the
//! baseline) because CI runners vary; the gate exists to catch layout
//! regressions that halve throughput (e.g. reintroducing pointer-chasing
//! nested-`Vec` metadata), not 5% noise.

use itpx_core::Preset;
use itpx_cpu::{Simulation, SystemConfig};
use itpx_trace::WorkloadSpec;
use std::fmt::Write as _;
use std::time::Instant;

/// Measured instructions per run; fixed so results are comparable.
const INSTRUCTIONS: u64 = 120_000;
/// Warmup instructions per run (simulated work too, so counted).
const WARMUP: u64 = 30_000;

/// Fraction of the baseline sim-IPS that must be reached, unless
/// overridden via `ITPX_THROUGHPUT_MARGIN` (e.g. `0.5` = half).
const DEFAULT_MARGIN: f64 = 0.5;

const BASELINE_PATH: &str = "BENCH_throughput_baseline.json";
const CAMPAIGN_PATH: &str = "BENCH_campaign.json";

struct RunResult {
    preset: &'static str,
    workload: &'static str,
    ms: f64,
    mips: f64,
}

fn main() {
    let cfg = SystemConfig::asplos25();
    let presets = [Preset::Lru, Preset::Itp, Preset::ItpXptp];
    let workloads = [
        ("server", WorkloadSpec::server_like(11)),
        ("spec", WorkloadSpec::spec_like(12)),
    ];

    let mut runs = Vec::new();
    let total_start = Instant::now();
    for preset in presets {
        for (wname, base) in &workloads {
            let w = base.clone().instructions(INSTRUCTIONS).warmup(WARMUP);
            let t0 = Instant::now();
            let out = Simulation::single_thread(&cfg, preset, &w).run();
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            let simulated = out.instructions() + WARMUP;
            runs.push(RunResult {
                preset: preset.name(),
                workload: wname,
                ms,
                mips: simulated as f64 / ms / 1e3,
            });
            println!(
                "  {:<16} {:<7} {:>8.1} ms  {:>6.2} sim-MIPS",
                preset.name(),
                wname,
                ms,
                simulated as f64 / ms / 1e3
            );
        }
    }
    let total_ms = total_start.elapsed().as_secs_f64() * 1e3;
    let total_insts = (INSTRUCTIONS + WARMUP) * (presets.len() * workloads.len()) as u64;
    let sim_ips = total_insts as f64 / (total_ms / 1e3);
    println!(
        "total: {total_insts} simulated instructions in {total_ms:.0} ms = {:.0} sim-IPS",
        sim_ips
    );

    if std::env::var_os("ITPX_BLESS_THROUGHPUT").is_some() {
        let body = format!("{{\"sim_ips\": {sim_ips:.0}}}\n");
        std::fs::write(BASELINE_PATH, body).expect("write baseline");
        println!("blessed {BASELINE_PATH} at {sim_ips:.0} sim-IPS");
    }

    let margin = std::env::var("ITPX_THROUGHPUT_MARGIN")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|m| (0.0..=1.0).contains(m))
        .unwrap_or(DEFAULT_MARGIN);
    let baseline = read_baseline(BASELINE_PATH);
    let (ratio, pass) = match baseline {
        Some(base) if base > 0.0 => {
            let ratio = sim_ips / base;
            (ratio, ratio >= margin)
        }
        _ => (1.0, true),
    };

    let mut section = String::new();
    let _ = write!(
        section,
        "{{\"instructions\": {INSTRUCTIONS}, \"warmup\": {WARMUP}, \"runs\": ["
    );
    for (i, r) in runs.iter().enumerate() {
        let _ = write!(
            section,
            "{}{{\"preset\": \"{}\", \"workload\": \"{}\", \"ms\": {:.3}, \"sim_mips\": {:.3}}}",
            if i == 0 { "" } else { ", " },
            r.preset,
            r.workload,
            r.ms,
            r.mips
        );
    }
    let _ = write!(
        section,
        "], \"total_ms\": {total_ms:.3}, \"sim_ips\": {sim_ips:.0}, \"baseline_sim_ips\": {}, \"margin\": {margin}, \"ratio\": {ratio:.3}, \"pass\": {pass}}}",
        baseline.map_or("null".to_string(), |b| format!("{b:.0}")),
    );

    let existing = std::fs::read_to_string(CAMPAIGN_PATH).unwrap_or_else(|_| "{\n}\n".to_string());
    std::fs::write(CAMPAIGN_PATH, merge_throughput(&existing, &section))
        .expect("write BENCH_campaign.json");
    println!("wrote throughput section into {CAMPAIGN_PATH}");

    if !pass {
        let base = baseline.unwrap_or(0.0);
        eprintln!(
            "FAIL: {sim_ips:.0} sim-IPS is below {:.0} ({} x the committed baseline of {base:.0})",
            base * margin,
            margin
        );
        std::process::exit(1);
    }
}

/// Extracts `sim_ips` from the hand-rolled baseline JSON.
fn read_baseline(path: &str) -> Option<f64> {
    let raw = std::fs::read_to_string(path).ok()?;
    let idx = raw.find("\"sim_ips\"")?;
    let rest = raw[idx..].split_once(':')?.1;
    let num: String = rest
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

/// Replaces or appends the top-level `"throughput"` key of the campaign
/// JSON object, keeping it the last key so repeated runs are idempotent.
fn merge_throughput(existing: &str, section: &str) -> String {
    let head = match existing.find(",\n  \"throughput\":") {
        Some(i) => existing[..i].to_string(),
        None => {
            let trimmed = existing.trim_end();
            let body = trimmed.strip_suffix('}').unwrap_or(trimmed).trim_end();
            body.to_string()
        }
    };
    if head.trim_end().ends_with('{') {
        // Degenerate case: no campaign section yet (empty object).
        format!("{{\n  \"throughput\": {section}\n}}\n")
    } else {
        format!("{head},\n  \"throughput\": {section}\n}}\n")
    }
}
