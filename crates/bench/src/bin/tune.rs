//! Profile-parameter sweep: for candidate workload shapes, prints the
//! baseline characterization metrics next to the iTP / iTP+xPTP uplift,
//! so the synthetic suite can be calibrated against the paper's bands
//! (see DESIGN.md substitution 2 and EXPERIMENTS.md).
//!
//! ```sh
//! ITPX_INSTRUCTIONS=600000 cargo run -p itpx-bench --release --bin tune
//! ```

use itpx_bench::RunScale;
use itpx_core::Preset;
use itpx_cpu::{Simulation, SystemConfig};
use itpx_trace::WorkloadSpec;

fn main() {
    let scale = RunScale::from_env();
    let config = SystemConfig::asplos25();
    println!(
        "instructions={} warmup={}",
        scale.instructions, scale.warmup
    );
    println!(
        "{:<44} {:>6} {:>6} {:>6} {:>6} {:>7} {:>7} {:>7} {:>8} {:>8} {:>8}",
        "profile",
        "IPC",
        "STLB",
        "iMPKI",
        "dMPKI",
        "L2C",
        "LLC",
        "itr%",
        "iTP%",
        "coop%",
        "missLat"
    );
    for &(dz, tr, tp, sr) in &[
        (1.9, 0.012, 4096usize, 0.15),
        (1.9, 0.020, 8192, 0.15),
        (1.7, 0.020, 8192, 0.15),
        (1.7, 0.030, 8192, 0.25),
        (1.5, 0.020, 8192, 0.25),
        (1.5, 0.030, 16384, 0.25),
        (1.7, 0.030, 16384, 0.30),
        (1.9, 0.030, 16384, 0.30),
    ] {
        let mut w = WorkloadSpec::server_like(7);
        w.profile.data_zipf_s = dz;
        w.profile.transit_ratio = tr;
        w.profile.transit_pages = tp;
        w.profile.stream_ratio = sr;
        let w = scale.apply(w);
        let base = Simulation::single_thread(&config, Preset::Lru, &w).run();
        let itp = Simulation::single_thread(&config, Preset::Itp, &w).run();
        let coop = Simulation::single_thread(&config, Preset::ItpXptp, &w).run();
        let b = base.stlb_breakdown();
        println!(
            "dz={dz:<4} tr={tr:<5} tp={tp:<6} sr={sr:<4}      {:>6.3} {:>6.2} {:>6.2} {:>6.2} {:>7.1} {:>7.1} {:>7.1} {:>+8.2} {:>+8.2} {:>5.0}>{:<4.0}",
            base.ipc(),
            base.stlb_mpki(),
            b.instr,
            b.data,
            base.l2c_mpki(),
            base.llc_mpki(),
            base.itrans_stall_fraction() * 100.0,
            itp.speedup_pct_over(&base),
            coop.speedup_pct_over(&base),
            base.stlb.avg_miss_latency(),
            coop.stlb.avg_miss_latency(),
        );
    }
}
