//! Measures the horizon advantage of tiered execution and folds a
//! `horizon` section into `BENCH_campaign.json`.
//!
//! Two legs run the same workload through the full [`Simulation`]
//! pipeline:
//!
//! * **flat** — the classic single-window run: every post-warmup
//!   instruction is simulated cycle-accurately, so the program horizon
//!   equals the measured instruction count;
//! * **tiered** — the SMARTS-style schedule (default
//!   `ITPX_TIER_WINDOW`/`ITPX_TIER_FF`/`ITPX_TIER_WINDOWS` values, all
//!   overridable): fast-forward gaps are covered by the functional model
//!   (warming capped, the rest skipped for free), so the horizon per
//!   unit wall-clock grows with the gap length.
//!
//! The figure of merit is the ratio of *horizon instructions per
//! wall-second* between the legs. CI gates on two conditions: the ratio
//! must clear the paper-level floor ([`MIN_RATIO`]) and must not fall
//! below the noise margin of the committed
//! `BENCH_horizon_baseline.json`.
//!
//! ```sh
//! cargo run -p itpx-bench --release --bin bench_horizon
//! ITPX_BLESS_HORIZON=1 cargo run -p itpx-bench --release --bin bench_horizon
//! ```

use itpx_bench::env;
use itpx_core::Preset;
use itpx_cpu::{Simulation, SystemConfig};
use itpx_trace::{TierSchedule, WorkloadSpec};
use std::time::Instant;

/// Measured instructions of the flat leg; fixed so results are
/// comparable across runs.
const FLAT_INSTRUCTIONS: u64 = 60_000;
/// Warmup instructions for both legs (cycle-accurate, uncounted).
const WARMUP: u64 = 5_000;

/// The tiered leg must cover at least this many times the flat leg's
/// horizon per wall-second — the headline claim of the tiered engine.
const MIN_RATIO: f64 = 10.0;
/// Fraction of the committed baseline ratio that must be reached, unless
/// overridden via `ITPX_HORIZON_MARGIN` (e.g. `0.5` = half).
const DEFAULT_MARGIN: f64 = 0.5;

const BASELINE_PATH: &str = "BENCH_horizon_baseline.json";
const CAMPAIGN_PATH: &str = "BENCH_campaign.json";

fn main() {
    let cfg = SystemConfig::asplos25();
    let base = WorkloadSpec::server_like(11).warmup(WARMUP);
    let schedule = env::tier_schedule_from_env(TierSchedule::tiered(
        env::TIER_WINDOW_DEFAULT,
        env::TIER_FF_DEFAULT,
        env::TIER_WINDOWS_DEFAULT,
    ));

    // Flat leg: horizon covered == instructions measured.
    let flat_spec = base.clone().instructions(FLAT_INSTRUCTIONS);
    let t0 = Instant::now();
    let flat = Simulation::single_thread(&cfg, Preset::ItpXptp, &flat_spec).run();
    let flat_s = t0.elapsed().as_secs_f64();
    let flat_horizon = flat.instructions();
    let flat_hps = flat_horizon as f64 / flat_s;

    // Tiered leg: horizon covered == windows * (window + fast_forward).
    let tiered_spec = base.tiers(schedule);
    let t0 = Instant::now();
    let tiered = Simulation::single_thread(&cfg, Preset::ItpXptp, &tiered_spec).run();
    let tiered_s = t0.elapsed().as_secs_f64();
    let tiered_horizon = schedule.horizon();
    let tiered_hps = tiered_horizon as f64 / tiered_s;

    let ratio = tiered_hps / flat_hps;
    println!(
        "flat:   {flat_horizon} insts in {:.1} ms = {:.2}M horizon-insts/s",
        flat_s * 1e3,
        flat_hps / 1e6
    );
    println!(
        "tiered: {tiered_horizon} insts ({} windows x {} measured + {} fast-forwarded) \
         in {:.1} ms = {:.2}M horizon-insts/s",
        schedule.windows,
        schedule.window,
        schedule.fast_forward,
        tiered_s * 1e3,
        tiered_hps / 1e6
    );
    println!(
        "horizon ratio: {ratio:.1}x (measured cycle-accurately: {} of {} insts)",
        tiered.instructions(),
        tiered_horizon
    );

    if std::env::var_os("ITPX_BLESS_HORIZON").is_some() {
        let body = format!("{{\"horizon_ratio\": {ratio:.1}}}\n");
        std::fs::write(BASELINE_PATH, body).expect("write baseline");
        println!("blessed {BASELINE_PATH} at {ratio:.1}x");
    }

    let margin = std::env::var("ITPX_HORIZON_MARGIN")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|m| (0.0..=1.0).contains(m))
        .unwrap_or(DEFAULT_MARGIN);
    let baseline = read_baseline(BASELINE_PATH);
    let floor = baseline.map_or(MIN_RATIO, |b| MIN_RATIO.max(b * margin));
    let pass = ratio >= floor;

    let section = format!(
        "{{\"flat\": {{\"horizon\": {flat_horizon}, \"seconds\": {flat_s:.3}}}, \
         \"tiered\": {{\"window\": {}, \"fast_forward\": {}, \"windows\": {}, \
         \"horizon\": {tiered_horizon}, \"measured\": {}, \"seconds\": {tiered_s:.3}}}, \
         \"ratio\": {ratio:.1}, \"min_ratio\": {MIN_RATIO}, \"baseline_ratio\": {}, \
         \"margin\": {margin}, \"pass\": {pass}}}",
        schedule.window,
        schedule.fast_forward,
        schedule.windows,
        tiered.instructions(),
        baseline.map_or("null".to_string(), |b| format!("{b:.1}")),
    );

    let existing = std::fs::read_to_string(CAMPAIGN_PATH).unwrap_or_else(|_| "{\n}\n".to_string());
    std::fs::write(CAMPAIGN_PATH, merge_horizon(&existing, &section))
        .expect("write BENCH_campaign.json");
    println!("wrote horizon section into {CAMPAIGN_PATH}");

    if !pass {
        eprintln!("FAIL: horizon ratio {ratio:.1}x is below the floor of {floor:.1}x");
        std::process::exit(1);
    }
}

/// Extracts `horizon_ratio` from the hand-rolled baseline JSON.
fn read_baseline(path: &str) -> Option<f64> {
    let raw = std::fs::read_to_string(path).ok()?;
    let idx = raw.find("\"horizon_ratio\"")?;
    let rest = raw[idx..].split_once(':')?.1;
    let num: String = rest
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

/// Replaces or inserts the top-level `"horizon"` key of the campaign
/// JSON object. The campaign file keeps one top-level key per line;
/// `horizon` is kept immediately before `throughput` (or last when
/// there is no throughput section) so repeated runs are idempotent.
fn merge_horizon(existing: &str, section: &str) -> String {
    let mut lines: Vec<String> = existing
        .lines()
        .filter(|l| !l.trim_start().starts_with("\"horizon\":"))
        .map(|l| l.to_string())
        .collect();
    if lines.is_empty() {
        lines = vec!["{".to_string(), "}".to_string()];
    }
    let at = lines
        .iter()
        .position(|l| l.trim_start().starts_with("\"throughput\":"))
        .unwrap_or(lines.len().saturating_sub(1));
    // The new line needs a comma exactly when a key follows it; the line
    // before it needs one exactly when it carries a key.
    let follows_key = at < lines.len() - 1;
    let entry = format!(
        "  \"horizon\": {section}{}",
        if follows_key { "," } else { "" }
    );
    if at > 0 {
        let prev = lines[at - 1].trim_end().trim_end_matches(',').to_string();
        lines[at - 1] = if prev == "{" {
            prev
        } else {
            format!("{prev},")
        };
    }
    lines.insert(at, entry);
    let mut out = lines.join("\n");
    out.push('\n');
    out
}
