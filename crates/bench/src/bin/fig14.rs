//! Reproduces Figure 14: unified STLB with iTP+xPTP vs split STLBs.

use itpx_bench::{figures, Campaign};

fn main() {
    figures::fig14(&Campaign::from_env()).finish();
}
