//! Reproduces Figure 14: unified STLB with iTP+xPTP vs split STLBs.

use itpx_bench::experiments::sensitivity;
use itpx_bench::{Report, RunScale};
use itpx_cpu::SystemConfig;

fn main() {
    let scale = RunScale::from_env();
    let config = SystemConfig::asplos25();
    let mut report = Report::new("Figure 14 - unified vs split STLB");
    report.line("paper: same-size split slightly behind unified+iTP+xPTP; 3072 unified+iTP+xPTP");
    report.line("beats 3072 split; improvements over 1536-entry unified LRU baseline");
    report.line("");
    for smt in [false, true] {
        report.line(if smt {
            "(b) two hardware threads"
        } else {
            "(a) single hardware thread"
        });
        for bar in sensitivity::fig14(&config, &scale, smt) {
            report.row(bar.label.clone(), format!("{:+.2}%", bar.geomean_pct));
        }
        report.line("");
    }
    report.finish();
}
