//! Reproduces Figure 2: STLB MPKI for instruction references.

use itpx_bench::{figures, Campaign};

fn main() {
    figures::fig02(&Campaign::from_env()).finish();
}
