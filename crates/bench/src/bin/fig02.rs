//! Reproduces Figure 2: STLB MPKI for instruction references.

use itpx_bench::experiments::motivation;
use itpx_bench::{Distribution, Report, RunScale};
use itpx_cpu::SystemConfig;

fn main() {
    let scale = RunScale::from_env();
    let config = SystemConfig::asplos25();
    let mut report = Report::new("Figure 2 - STLB instruction MPKI per suite");
    report.line("paper: server up to ~0.9 iMPKI (scaled runs sit higher); SPEC ~0");
    report.line("");
    for row in motivation::fig02(&config, &scale) {
        report.row(
            format!("{} mean iMPKI", row.suite),
            format!("{:.3}", row.mean),
        );
        report.row(
            format!("{} distribution", row.suite),
            Distribution::of(&row.impki),
        );
    }
    report.finish();
}
