//! Parameter ablations DESIGN.md calls out: iTP's N/M, xPTP's K, and the
//! adaptive threshold T1.

use itpx_bench::experiments::sensitivity;
use itpx_bench::{Report, RunScale};
use itpx_cpu::SystemConfig;

fn main() {
    let scale = RunScale::from_env();
    let config = SystemConfig::asplos25();
    let mut report = Report::new("Ablations - iTP N/M, xPTP K, adaptive T1");
    report.line(
        "paper: N/M have little effect; K matters most (mid-stack best); iTP+xPTP geomean shown",
    );
    report.line("");
    report.line("-- iTP insertion/promotion depths --");
    for c in sensitivity::ablation_nm(&config, &scale) {
        report.row(c.setting.clone(), format!("{:+.2}%", c.geomean_pct));
    }
    report.line("");
    report.line("-- xPTP protection threshold K --");
    for c in sensitivity::ablation_k(&config, &scale) {
        report.row(c.setting.clone(), format!("{:+.2}%", c.geomean_pct));
    }
    report.line("");
    report.line("-- adaptive threshold T1 (misses per 1000-instruction epoch) --");
    for c in sensitivity::ablation_t1(&config, &scale) {
        report.row(c.setting.clone(), format!("{:+.2}%", c.geomean_pct));
    }
    report.finish();
}
