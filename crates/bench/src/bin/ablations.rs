//! Parameter ablations DESIGN.md calls out: iTP's N/M, xPTP's K, and the
//! adaptive threshold T1.

use itpx_bench::{figures, Campaign};

fn main() {
    figures::ablations(&Campaign::from_env()).finish();
}
