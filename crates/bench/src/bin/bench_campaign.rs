//! Times the figure campaign cold vs warm-cache at smoke scale and writes
//! `BENCH_campaign.json`.
//!
//! Two passes run the full figure set through fresh [`Campaign`]s sharing
//! one on-disk cache directory (`target/simcache-bench/`, wiped first).
//! The cold pass simulates everything; the warm pass must execute zero
//! simulations for the cacheable figures and reproduce every report
//! byte-for-byte, or this binary exits non-zero — CI runs it as the
//! campaign-engine regression gate.
//!
//! ```sh
//! cargo run -p itpx-bench --release --bin bench_campaign
//! ```

use itpx_bench::{figures, Campaign, RunScale, SimCache};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

struct FigTiming {
    name: &'static str,
    ms: f64,
    hits: u64,
    misses: u64,
}

struct Pass {
    total_ms: f64,
    figures: Vec<FigTiming>,
    texts: Vec<String>,
    hits: u64,
    misses: u64,
}

fn run_pass(scale: RunScale, dir: &Path) -> Pass {
    let campaign = Campaign::new(scale, SimCache::new(Some(dir.to_path_buf())));
    let start = Instant::now();
    let mut figures_out = Vec::new();
    let mut texts = Vec::new();
    for fig in figures::ALL {
        let (h0, m0) = (campaign.cache().hits(), campaign.cache().misses());
        let t0 = Instant::now();
        let report = (fig.build)(&campaign);
        figures_out.push(FigTiming {
            name: fig.name,
            ms: t0.elapsed().as_secs_f64() * 1e3,
            hits: campaign.cache().hits() - h0,
            misses: campaign.cache().misses() - m0,
        });
        texts.push(report.text().to_string());
    }
    Pass {
        total_ms: start.elapsed().as_secs_f64() * 1e3,
        figures: figures_out,
        texts,
        hits: campaign.cache().hits(),
        misses: campaign.cache().misses(),
    }
}

fn pass_json(p: &Pass) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"total_ms\": {:.3}, \"cache_hits\": {}, \"cache_misses\": {}, \"figures\": [",
        p.total_ms, p.hits, p.misses
    );
    for (i, f) in p.figures.iter().enumerate() {
        let _ = write!(
            s,
            "{}{{\"name\": \"{}\", \"ms\": {:.3}, \"cache_hits\": {}, \"cache_misses\": {}}}",
            if i == 0 { "" } else { ", " },
            f.name,
            f.ms,
            f.hits,
            f.misses
        );
    }
    s.push_str("]}");
    s
}

fn main() {
    // Fixed smoke scale so the two passes are comparable and fast; only
    // the host-thread count follows the environment.
    let scale = RunScale {
        host_threads: RunScale::from_env().host_threads,
        ..RunScale::smoke()
    };
    let dir = PathBuf::from("target/simcache-bench");
    let _ = std::fs::remove_dir_all(&dir);

    println!("cold pass (empty cache)...");
    let cold = run_pass(scale, &dir);
    println!(
        "  {:.0} ms, {} simulations executed, {} served",
        cold.total_ms, cold.misses, cold.hits
    );

    println!("warm pass (disk cache from cold pass)...");
    let warm = run_pass(scale, &dir);
    println!(
        "  {:.0} ms, {} simulations executed, {} served",
        warm.total_ms, warm.misses, warm.hits
    );

    let identical = cold.texts == warm.texts;
    let cache_served = warm
        .figures
        .iter()
        .filter(|f| f.misses == 0 && f.hits > 0)
        .count();

    let json = format!(
        "{{\n  \"scale\": {{\"workloads\": {}, \"smt_pairs\": {}, \"instructions\": {}, \"warmup\": {}, \"host_threads\": {}}},\n  \"cold\": {},\n  \"warm\": {},\n  \"identical_reports\": {},\n  \"cache_served_figures\": {}\n}}\n",
        scale.workloads,
        scale.smt_pairs,
        scale.instructions,
        scale.warmup,
        scale.host_threads,
        pass_json(&cold),
        pass_json(&warm),
        identical,
        cache_served
    );
    std::fs::write("BENCH_campaign.json", &json).expect("write BENCH_campaign.json");
    println!("wrote BENCH_campaign.json");

    let mut ok = true;
    if warm.misses != 0 {
        eprintln!(
            "FAIL: warm pass executed {} simulations; expected 0 (all cacheable work served)",
            warm.misses
        );
        ok = false;
    }
    if !identical {
        for (i, fig) in figures::ALL.iter().enumerate() {
            if cold.texts[i] != warm.texts[i] {
                eprintln!("FAIL: report bytes differ between passes for {}", fig.name);
            }
        }
        ok = false;
    }
    if cache_served == 0 {
        eprintln!("FAIL: no figure was served entirely from cache on the warm pass");
        ok = false;
    }
    if !ok {
        std::process::exit(1);
    }
    println!(
        "warm pass: {}/{} figures served from cache, reports byte-identical, {:.1}x speedup",
        cache_served,
        figures::ALL.len(),
        cold.total_ms / warm.total_ms.max(0.001)
    );
}
