//! `itpx-serve` — the campaign engine as a long-running service.
//!
//! Binds `ITPX_SERVE_ADDR` (default `127.0.0.1:7425`) and serves figure
//! reports and single simulations over HTTP, warm results straight from
//! the segmented store. See [`itpx_bench::serve`] for the routes.
//!
//! ```text
//! $ cargo run --release --bin itpx-serve &
//! $ curl http://127.0.0.1:7425/figure/fig01
//! ```

use itpx_bench::Campaign;
use std::sync::Arc;

fn main() {
    let addr = itpx_bench::env::serve_addr_from_env();
    let campaign = Arc::new(Campaign::from_env());
    let workers = campaign.scale().host_threads.max(2);
    let server = match itpx_bench::serve::start(&addr, campaign, workers) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("itpx-serve: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("itpx-serve listening on http://{}", server.addr());
    // Serve until killed; the handle's Drop would stop the listener if
    // main ever returned.
    loop {
        std::thread::park();
    }
}
