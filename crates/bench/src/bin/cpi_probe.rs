//! Diagnostic: CPI headroom probes for workload/engine balance.
//!
//! Runs counterfactual machines (huge ITLB+STLB, perfect-ish caches via a
//! giant L2C, no-branch-penalty) to show which bottleneck binds the
//! baseline IPC — used while calibrating the synthetic suite.

use itpx_bench::RunScale;
use itpx_core::Preset;
use itpx_cpu::{Simulation, SystemConfig};
use itpx_trace::WorkloadSpec;

fn main() {
    let scale = RunScale::from_env();
    let w = scale.apply(WorkloadSpec::server_like(7));
    let base_cfg = SystemConfig::asplos25();

    let run = |label: &str, cfg: &SystemConfig| {
        let out = Simulation::single_thread(cfg, Preset::Lru, &w).run();
        println!(
            "{:<18} IPC {:.4}  itrans {:>5.1}%  mispred/1k {:>5.1}  dram/1k {:>6.1}",
            label,
            out.ipc(),
            out.itrans_stall_fraction() * 100.0,
            out.threads[0].mispredictions as f64 * 1000.0 / out.threads[0].instructions as f64,
            out.dram_reads as f64 * 1000.0 / out.instructions() as f64,
        );
        out.ipc()
    };

    let base = run("baseline", &base_cfg);

    let big_itlb = base_cfg.with_itlb_entries(4096).with_stlb_entries(36864);
    let i = run("huge ITLB+STLB", &big_itlb);

    let mut big_l2 = base_cfg;
    big_l2.hierarchy.l2c_mut().sets = 65536; // 32 MiB L2C: data mostly L2-resident
    let c = run("huge L2C", &big_l2);

    let mut both = big_itlb;
    both.hierarchy.l2c_mut().sets = 65536;
    let b = run("both huge", &both);

    let mut nobranch = base_cfg;
    nobranch.mispredict_penalty = 0;
    run("no mispred pen.", &nobranch);

    println!(
        "\nheadroom: translation {:+.1}%  caches {:+.1}%  both {:+.1}%",
        (i / base - 1.0) * 100.0,
        (c / base - 1.0) * 100.0,
        (b / base - 1.0) * 100.0
    );
}
