//! Extension experiment: the full T-DRRIP + T-SHiP proposal (Vasudha &
//! Panda, ISPASS 2022). The paper under reproduction applies only the
//! T-DRRIP half at the L2C (its experiments found that stronger on these
//! workloads); this binary checks the complete original configuration,
//! and iTP+xPTP against it.

use itpx_bench::{Report, RunScale, Sweep};
use itpx_core::presets::{BuildConfig, LlcChoice};
use itpx_core::Preset;
use itpx_cpu::{Simulation, SystemConfig};
use itpx_trace::qualcomm_like_suite;
use itpx_types::stats::geomean_speedup;

fn main() {
    let scale = RunScale::from_env();
    let config = SystemConfig::asplos25();
    let sweep = Sweep::new(scale.host_threads);
    let suite: Vec<_> = qualcomm_like_suite(scale.workloads)
        .into_iter()
        .map(|w| scale.apply(w))
        .collect();
    let base = sweep.run(suite.clone(), |w| {
        Simulation::single_thread(&config, Preset::Lru, w).run()
    });

    let mut report = Report::new("Extension - full TDRRIP plus T-SHiP at the LLC");
    report.line("the original ISPASS'22 proposal pairs T-DRRIP (L2C) with T-SHiP (LLC);");
    report.line("the reproduced paper uses only the L2C half. Geomean over LRU:");
    report.line("");
    let cases = [
        (Preset::Tdrrip, LlcChoice::Lru, "TDRRIP (paper config)"),
        (Preset::Lru, LlcChoice::Ship, "SHiP LLC only (control)"),
        (Preset::Tdrrip, LlcChoice::TShip, "TDRRIP + T-SHiP LLC"),
        (Preset::ItpXptp, LlcChoice::Ship, "iTP+xPTP + SHiP LLC"),
        (Preset::ItpXptp, LlcChoice::TShip, "iTP+xPTP + T-SHiP LLC"),
        (Preset::ItpXptp, LlcChoice::Lru, "iTP+xPTP"),
    ];
    for (preset, llc, label) in cases {
        let build = BuildConfig {
            llc,
            ..BuildConfig::default()
        };
        let outs = sweep.run(suite.clone(), |w| {
            Simulation::single_thread(&config, preset, w)
                .build_config(build)
                .run()
        });
        let ups: Vec<f64> = outs
            .iter()
            .zip(&base)
            .map(|(o, b)| o.speedup_pct_over(b) / 100.0)
            .collect();
        report.row(label, format!("{:+.2}%", geomean_speedup(&ups) * 100.0));
    }
    report.finish();
}
