//! Extension experiment: the full T-DRRIP + T-SHiP proposal (Vasudha &
//! Panda, ISPASS 2022). The paper under reproduction applies only the
//! T-DRRIP half at the L2C (its experiments found that stronger on these
//! workloads); this binary checks the complete original configuration,
//! and iTP+xPTP against it.

use itpx_bench::{figures, Campaign};

fn main() {
    figures::ext_tship(&Campaign::from_env()).finish();
}
