//! Head-to-head preset comparison with bootstrap confidence intervals and
//! terminal violin plots.
//!
//! ```sh
//! cargo run -p itpx-bench --release --bin compare -- iTP+xPTP LRU
//! cargo run -p itpx-bench --release --bin compare -- TDRRIP PTP
//! ```

use itpx_bench::plot::violin_panel;
use itpx_bench::{Comparison, Distribution, Report, RunScale, Sweep};
use itpx_core::Preset;
use itpx_cpu::{Simulation, SystemConfig};
use itpx_trace::qualcomm_like_suite;

fn parse_preset(name: &str) -> Option<Preset> {
    Preset::EVALUATED
        .into_iter()
        .chain([Preset::ItpXptpStatic, Preset::ItpXptpEmissary])
        .find(|p| p.name().eq_ignore_ascii_case(name))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cand, base) = match (args.first(), args.get(1)) {
        (Some(a), Some(b)) => match (parse_preset(a), parse_preset(b)) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                eprintln!(
                    "unknown preset; valid names: {:?}",
                    Preset::EVALUATED.map(|p| p.name())
                );
                std::process::exit(1);
            }
        },
        _ => (Preset::ItpXptp, Preset::Lru),
    };

    let scale = RunScale::from_env();
    let config = SystemConfig::asplos25();
    let sweep = Sweep::new(scale.host_threads);
    let suite: Vec<_> = qualcomm_like_suite(scale.workloads)
        .into_iter()
        .map(|w| scale.apply(w))
        .collect();
    let run = |preset: Preset| -> Vec<f64> {
        sweep
            .run(suite.clone(), |w| {
                Simulation::single_thread(&config, preset, w).run()
            })
            .iter()
            .map(|o| o.ipc())
            .collect()
    };
    let base_ipc = run(base);
    let cand_ipc = run(cand);
    let cmp = Comparison::summarize(cand.name(), base.name(), &cand_ipc, &base_ipc);

    let mut report = Report::new(format!("Compare {} vs {}", cand.name(), base.name()));
    report.line(cmp.to_string());
    report.line("");
    report.line("per-workload IPC improvement distribution (%):");
    report.line(violin_panel(
        &[(cand.name(), Distribution::of(&cmp.improvements_pct))],
        60,
    ));
    report.finish();
}
