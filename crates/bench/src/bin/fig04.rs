//! Reproduces Figure 4: L2C/LLC MPKI breakdown, LRU vs keep-instructions
//! (P = 0.8) at the STLB.

use itpx_bench::{figures, Campaign};

fn main() {
    figures::fig04(&Campaign::from_env()).finish();
}
