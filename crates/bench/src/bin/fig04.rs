//! Reproduces Figure 4: L2C/LLC MPKI breakdown, LRU vs keep-instructions
//! (P = 0.8) at the STLB.

use itpx_bench::experiments::motivation;
use itpx_bench::{Report, RunScale};
use itpx_cpu::SystemConfig;

fn main() {
    let scale = RunScale::from_env();
    let config = SystemConfig::asplos25();
    let mut report = Report::new("Figure 4 - cache MPKI breakdown under instruction-keeping STLB");
    report.line("paper: keeping instructions raises dtMPKI (data page-walk misses) at L2C/LLC");
    report.line("");
    for bar in motivation::fig04(&config, &scale) {
        report.row(
            format!("{} / {}", bar.level, bar.stlb_policy),
            bar.breakdown,
        );
    }
    report.finish();
}
