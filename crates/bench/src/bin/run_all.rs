//! Regenerates every reproduced table and figure in-process, writing text
//! reports to `target/experiments/`.
//!
//! All figures share one [`Campaign`]: a single job queue across
//! `ITPX_THREADS` host threads and one simulation cache, so baselines
//! repeated between figures (the LRU columns of fig08/fig09/fig11/..., the
//! calibration table) simulate exactly once per campaign — and zero times
//! on a warm cache.
//!
//! ```sh
//! ITPX_WORKLOADS=16 ITPX_INSTRUCTIONS=600000 \
//!     cargo run -p itpx-bench --release --bin run_all
//! ```

use itpx_bench::{figures, Campaign};

fn main() {
    let campaign = Campaign::from_env();
    let mut failures = Vec::new();
    for fig in figures::ALL {
        println!("==== {} ====", fig.name);
        if (fig.build)(&campaign).finish().is_none() {
            failures.push(fig.name);
        }
    }
    let cache = campaign.cache();
    println!(
        "cache: {} simulations served, {} executed",
        cache.hits(),
        cache.misses()
    );
    if failures.is_empty() {
        println!("all experiments completed; reports in target/experiments/");
    } else {
        eprintln!("failed to write reports: {failures:?}");
        std::process::exit(1);
    }
}
