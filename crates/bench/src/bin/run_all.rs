//! Regenerates every reproduced table and figure, writing text reports to
//! `target/experiments/`.
//!
//! ```sh
//! ITPX_WORKLOADS=16 ITPX_INSTRUCTIONS=600000 \
//!     cargo run -p itpx-bench --release --bin run_all
//! ```

use std::process::Command;

fn main() {
    let bins = [
        "calibrate",
        "fig01",
        "fig02",
        "fig03",
        "fig04",
        "fig08",
        "fig09",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "ablations",
        "ext_emissary",
        "ext_tship",
    ];
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let mut failures = Vec::new();
    for bin in bins {
        println!("==== {bin} ====");
        let status = Command::new(dir.join(bin)).status();
        match status {
            Ok(s) if s.success() => {}
            other => {
                eprintln!("{bin} failed: {other:?}");
                failures.push(bin);
            }
        }
    }
    if failures.is_empty() {
        println!("all experiments completed; reports in target/experiments/");
    } else {
        eprintln!("failed experiments: {failures:?}");
        std::process::exit(1);
    }
}
