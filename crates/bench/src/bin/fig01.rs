//! Reproduces Figure 1: cycles spent on instruction address translation
//! as a function of ITLB size, server vs SPEC suites.

use itpx_bench::experiments::motivation;
use itpx_bench::{Report, RunScale};
use itpx_cpu::SystemConfig;

fn main() {
    let scale = RunScale::from_env();
    let config = SystemConfig::asplos25();
    let mut report = Report::new("Figure 1 - instruction address translation cycles vs ITLB size");
    report
        .line("paper: server ~12.5% at 64-128 entries, needs >1024 entries to vanish; SPEC ~0.03%");
    report.line("");
    report.line(format!("{:<8} {:>6} {:>10}", "suite", "ITLB", "itrans%"));
    for cell in motivation::fig01(&config, &scale) {
        report.line(format!(
            "{:<8} {:>6} {:>9.2}%",
            cell.suite,
            cell.itlb_entries,
            cell.mean * 100.0
        ));
    }
    report.finish();
}
