//! Reproduces Figure 1: cycles spent on instruction address translation
//! as a function of ITLB size, server vs SPEC suites.

use itpx_bench::{figures, Campaign};

fn main() {
    figures::fig01(&Campaign::from_env()).finish();
}
