//! Reproduces Figure 12: iTP and iTP+xPTP across ITLB sizes.

use itpx_bench::experiments::sensitivity;
use itpx_bench::{Report, RunScale};
use itpx_cpu::SystemConfig;

fn main() {
    let scale = RunScale::from_env();
    let config = SystemConfig::asplos25();
    let mut report = Report::new("Figure 12 - sensitivity to ITLB size");
    report.line("paper: gains consistent for <=512-entry ITLBs, shrink at 1024 (1T)");
    report.line("");
    for smt in [false, true] {
        report.line(if smt {
            "(b) two hardware threads"
        } else {
            "(a) single hardware thread"
        });
        for cell in sensitivity::fig12(&config, &scale, smt) {
            report.row(
                format!("ITLB={:<5} {}", cell.itlb_entries, cell.preset),
                format!("{:+.2}%", cell.geomean_pct),
            );
        }
        report.line("");
    }
    report.finish();
}
