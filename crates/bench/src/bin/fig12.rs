//! Reproduces Figure 12: iTP and iTP+xPTP across ITLB sizes.

use itpx_bench::{figures, Campaign};

fn main() {
    figures::fig12(&Campaign::from_env()).finish();
}
