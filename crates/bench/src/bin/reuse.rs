//! Prints page-level reuse-distance profiles of the synthetic workloads —
//! the characterization used to keep the suites aligned with the paper's
//! Section 3 analysis (code working sets around STLB capacity, data reuse
//! split between TLB-hot and transit traffic).
//!
//! ```sh
//! cargo run -p itpx-bench --release --bin reuse
//! ```

use itpx_bench::{Report, RunScale};
use itpx_trace::{mix_summary, page_reuse_profiles, TraceGenerator, WorkloadSpec};

fn main() {
    let scale = RunScale::from_env();
    let n = scale.instructions as usize;
    let mut report = Report::new("Workload reuse-distance profiles");
    for spec in [WorkloadSpec::server_like(0), WorkloadSpec::spec_like(0)] {
        let mix = mix_summary(TraceGenerator::new(&spec).take(n));
        let (code, data) = page_reuse_profiles(TraceGenerator::new(&spec).take(n));
        report.line(format!("-- {} ({} instructions) --", spec.name, n));
        report.row("code pages touched", mix.code_pages);
        report.row("data pages touched", mix.data_pages);
        for (label, p) in [("code", &code), ("data", &data)] {
            report.row(
                format!("{label} page-LRU hit @64"),
                format!("{:.1}%", p.hit_fraction_at(64) * 100.0),
            );
            report.row(
                format!("{label} page-LRU hit @1536"),
                format!("{:.1}%", p.hit_fraction_at(1536) * 100.0),
            );
            report.row(
                format!("{label} cold fraction"),
                format!("{:.2}%", p.cold as f64 * 100.0 / p.total.max(1) as f64),
            );
        }
        report.line("");
    }
    report.finish();
}
