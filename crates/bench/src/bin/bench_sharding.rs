//! Measures the multi-process shard mode against a single process and
//! folds a `sharding` section into `BENCH_campaign.json`.
//!
//! Two legs run the full figure set cold at a fixed smoke scale with
//! one host thread per process, sharing nothing but the segmented
//! store:
//!
//! * **flat** — one process, the classic in-process executor;
//! * **sharded** — this binary re-execs itself twice
//!   ([`Executor::Sharded`] with `shards = 2`), both children writing
//!   into one wiped store directory and merging each other's results.
//!
//! CI gates on two conditions, always: every shard's report set must be
//! byte-identical to the flat leg's, and — only on hosts with at least
//! two cores, since shard parallelism cannot show on one — the
//! wall-clock speedup must clear the committed
//! `BENCH_sharding_baseline.json` floor.
//!
//! ```sh
//! cargo run -p itpx-bench --release --bin bench_sharding
//! ITPX_BLESS_SHARDING=1 cargo run -p itpx-bench --release --bin bench_sharding
//! ```

use itpx_bench::{figures, Campaign, Executor, RunScale, SimCache};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Fixed scale for both legs: one host thread per process so the
/// sharded leg's advantage is pure process-level parallelism, and small
/// enough that the cold figure set stays in CI territory.
const SCALE: RunScale = RunScale {
    workloads: 2,
    smt_pairs: 2,
    instructions: 20_000,
    warmup: 5_000,
    host_threads: 1,
};

/// Shards in the sharded leg.
const SHARDS: u64 = 2;

/// Minimum speedup on multi-core hosts, before the baseline tightens it.
const MIN_SPEEDUP: f64 = 1.15;
/// Fraction of the committed baseline speedup that must be reached,
/// unless overridden via `ITPX_SHARDING_MARGIN` (e.g. `0.5` = half).
const DEFAULT_MARGIN: f64 = 0.5;

const BASELINE_PATH: &str = "BENCH_sharding_baseline.json";
const CAMPAIGN_PATH: &str = "BENCH_campaign.json";

/// Runs every figure cold through one campaign, returning the
/// concatenated report texts.
fn run_figures(dir: &Path, executor: Executor) -> String {
    let campaign =
        Campaign::new(SCALE, SimCache::new(Some(dir.to_path_buf()))).with_executor(executor);
    let mut all = String::new();
    for fig in figures::ALL {
        all.push_str((fig.build)(&campaign).text());
        all.push('\n');
    }
    all
}

fn wipe(dir: &Path) {
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir).expect("create store dir");
}

fn main() {
    // Child mode: run one shard of the figure set and write the texts.
    if let Ok(index) = std::env::var("ITPX_SHARD_CHILD") {
        let index: u64 = index.parse().expect("ITPX_SHARD_CHILD index");
        let dir = PathBuf::from(std::env::var("ITPX_SHARD_DIR").expect("ITPX_SHARD_DIR"));
        let out = std::env::var("ITPX_SHARD_OUT").expect("ITPX_SHARD_OUT");
        let texts = run_figures(
            &dir,
            Executor::Sharded {
                shards: SHARDS,
                index,
            },
        );
        std::fs::write(out, texts).expect("write shard texts");
        return;
    }

    let dir = PathBuf::from("target/simcache-shard");

    // Flat leg: one process, cold store.
    wipe(&dir);
    let t0 = Instant::now();
    let flat_texts = run_figures(&dir, Executor::InProcess);
    let flat_s = t0.elapsed().as_secs_f64();
    println!(
        "flat:    1 process  cold campaign in {:.1} ms",
        flat_s * 1e3
    );

    // Sharded leg: two single-thread children over one cold store.
    wipe(&dir);
    let exe = std::env::current_exe().expect("current exe");
    let t0 = Instant::now();
    let children: Vec<(std::process::Child, PathBuf)> = (0..SHARDS)
        .map(|index| {
            let out = dir.join(format!("shard-{index}.txt"));
            let child = std::process::Command::new(&exe)
                .env("ITPX_SHARD_CHILD", index.to_string())
                .env("ITPX_SHARD_DIR", &dir)
                .env("ITPX_SHARD_OUT", &out)
                .spawn()
                .expect("spawn shard child");
            (child, out)
        })
        .collect();
    let mut shard_texts = Vec::new();
    for (mut child, out) in children {
        let status = child.wait().expect("wait for shard child");
        assert!(status.success(), "shard child failed: {status}");
        shard_texts.push(std::fs::read_to_string(out).expect("read shard texts"));
    }
    let shard_s = t0.elapsed().as_secs_f64();
    println!(
        "sharded: {SHARDS} processes cold campaign in {:.1} ms",
        shard_s * 1e3
    );

    let identical = shard_texts.iter().all(|t| *t == flat_texts);
    let speedup = flat_s / shard_s;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("identical reports: {identical}; speedup {speedup:.2}x on {cores} core(s)");

    if std::env::var_os("ITPX_BLESS_SHARDING").is_some() {
        let body = format!("{{\"sharding_speedup\": {speedup:.2}, \"cores\": {cores}}}\n");
        std::fs::write(BASELINE_PATH, body).expect("write baseline");
        println!("blessed {BASELINE_PATH} at {speedup:.2}x");
    }

    let margin = std::env::var("ITPX_SHARDING_MARGIN")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|m| (0.0..=1.0).contains(m))
        .unwrap_or(DEFAULT_MARGIN);
    let baseline = read_baseline(BASELINE_PATH);
    // One core cannot show process parallelism: gate identity only.
    let floor = if cores < 2 {
        None
    } else {
        Some(baseline.map_or(MIN_SPEEDUP, |b| MIN_SPEEDUP.max(b * margin)))
    };
    let speed_pass = floor.is_none_or(|f| speedup >= f);
    let pass = identical && speed_pass;

    let section = format!(
        "{{\"shards\": {SHARDS}, \"flat_seconds\": {flat_s:.3}, \
         \"sharded_seconds\": {shard_s:.3}, \"speedup\": {speedup:.2}, \
         \"cores\": {cores}, \"identical_reports\": {identical}, \
         \"baseline_speedup\": {}, \"margin\": {margin}, \"pass\": {pass}}}",
        baseline.map_or("null".to_string(), |b| format!("{b:.2}")),
    );
    let existing = std::fs::read_to_string(CAMPAIGN_PATH).unwrap_or_else(|_| "{\n}\n".to_string());
    std::fs::write(CAMPAIGN_PATH, merge_sharding(&existing, &section))
        .expect("write BENCH_campaign.json");
    println!("wrote sharding section into {CAMPAIGN_PATH}");

    if !identical {
        eprintln!("FAIL: shard reports diverge from the single-process reports");
        std::process::exit(1);
    }
    if let Some(f) = floor {
        if speedup < f {
            eprintln!("FAIL: sharding speedup {speedup:.2}x is below the floor of {f:.2}x");
            std::process::exit(1);
        }
    }
}

/// Extracts `sharding_speedup` from the hand-rolled baseline JSON.
fn read_baseline(path: &str) -> Option<f64> {
    let raw = std::fs::read_to_string(path).ok()?;
    let idx = raw.find("\"sharding_speedup\"")?;
    let rest = raw[idx..].split_once(':')?.1;
    let num: String = rest
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

/// Replaces or inserts the top-level `"sharding"` key of the campaign
/// JSON object. The campaign file keeps one top-level key per line;
/// `sharding` is kept immediately before `throughput` (or last when
/// there is no throughput section) so repeated runs are idempotent.
fn merge_sharding(existing: &str, section: &str) -> String {
    let mut lines: Vec<String> = existing
        .lines()
        .filter(|l| !l.trim_start().starts_with("\"sharding\":"))
        .map(|l| l.to_string())
        .collect();
    if lines.is_empty() {
        lines = vec!["{".to_string(), "}".to_string()];
    }
    let at = lines
        .iter()
        .position(|l| l.trim_start().starts_with("\"throughput\":"))
        .unwrap_or(lines.len().saturating_sub(1));
    let follows_key = at < lines.len() - 1;
    let entry = format!(
        "  \"sharding\": {section}{}",
        if follows_key { "," } else { "" }
    );
    if at > 0 {
        let prev = lines[at - 1].trim_end().trim_end_matches(',').to_string();
        lines[at - 1] = if prev == "{" {
            prev
        } else {
            format!("{prev},")
        };
    }
    lines.insert(at, entry);
    let mut out = lines.join("\n");
    out.push('\n');
    out
}
