//! Prints baseline (LRU) characteristics of the synthetic workload suites
//! against the paper's Section 3/5 characterization targets.
//!
//! ```sh
//! cargo run -p itpx-bench --release --bin calibrate
//! ```

use itpx_bench::experiments::calibrate::{calibration_table, format_rows};
use itpx_bench::{Report, RunScale};
use itpx_cpu::SystemConfig;
use itpx_trace::{qualcomm_like_suite, spec_like_suite};

fn main() {
    let scale = RunScale::from_env();
    let config = SystemConfig::asplos25();
    let mut report = Report::new("Workload calibration (LRU baseline)");
    report.line(format!(
        "scale: {} workloads x {} instructions (+{} warmup), {} host threads",
        scale.workloads, scale.instructions, scale.warmup, scale.host_threads
    ));
    report.line("");
    report.line("targets (paper): server STLB MPKI >= 1, iMPKI up to ~0.9 (Fig 2),");
    report.line("itrans ~12.5% at 64-entry ITLB (Fig 1); SPEC: iMPKI ~0, itrans ~0%.");
    report.line("");

    report.line("-- Qualcomm-Server-like suite --");
    let rows = calibration_table(&config, &qualcomm_like_suite(scale.workloads), &scale);
    report.line(format_rows(&rows));

    report.line("-- SPEC-CPU-like suite --");
    let rows = calibration_table(
        &config,
        &spec_like_suite((scale.workloads / 2).max(2)),
        &scale,
    );
    report.line(format_rows(&rows));
    report.finish();
}
