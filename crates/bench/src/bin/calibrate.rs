//! Prints baseline (LRU) characteristics of the synthetic workload suites
//! against the paper's Section 3/5 characterization targets.
//!
//! ```sh
//! cargo run -p itpx-bench --release --bin calibrate
//! ```

use itpx_bench::{figures, Campaign};

fn main() {
    figures::calibrate_report(&Campaign::from_env()).finish();
}
