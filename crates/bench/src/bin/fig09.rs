//! Reproduces Figures 9 and 10: per-structure MPKI, miss latencies, and
//! the STLB instruction/data breakdown for every policy.

use itpx_bench::{figures, Campaign};

fn main() {
    figures::fig09(&Campaign::from_env()).finish();
}
