//! Reproduces Figures 9 and 10: per-structure MPKI, miss latencies, and
//! the STLB instruction/data breakdown for every policy.

use itpx_bench::experiments::fig09;
use itpx_bench::{Report, RunScale};
use itpx_cpu::SystemConfig;

fn main() {
    let scale = RunScale::from_env();
    let config = SystemConfig::asplos25();
    let mut report = Report::new("Figure 9+10 - structure MPKI and miss latency per policy");
    report.line("paper (1T): iTP+xPTP cuts STLB miss latency ~46%, L2C dPTE MPKI 1.0->0.4,");
    report.line("raises L2C MPKI, lowers LLC MPKI; iTP trades iMPKI down for dMPKI up (Fig 10)");
    report.line("");
    report.line("(a) single hardware thread");
    report.line(fig09::format_rows(&fig09::run(&config, &scale, false)));
    report.line("(b) two hardware threads");
    report.line(fig09::format_rows(&fig09::run(&config, &scale, true)));
    report.finish();
}
