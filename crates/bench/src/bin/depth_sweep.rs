//! Sweeps hierarchy depth (2/3/4-level chains) and L2C size, reporting
//! iTP+xPTP's uplift over LRU at each point.
//!
//! ```sh
//! cargo run -p itpx-bench --release --bin depth_sweep
//! ```

use itpx_bench::{figures, Campaign};

fn main() {
    figures::depth_sweep_report(&Campaign::from_env()).finish();
}
