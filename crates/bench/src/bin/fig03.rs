//! Reproduces Figure 3: IPC improvement when the STLB victimizes data
//! translations with probability P.

use itpx_bench::{figures, Campaign};

fn main() {
    figures::fig03(&Campaign::from_env()).finish();
}
