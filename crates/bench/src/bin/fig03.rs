//! Reproduces Figure 3: IPC improvement when the STLB victimizes data
//! translations with probability P.

use itpx_bench::experiments::motivation;
use itpx_bench::{Report, RunScale};
use itpx_cpu::SystemConfig;

fn main() {
    let scale = RunScale::from_env();
    let config = SystemConfig::asplos25();
    let mut report = Report::new("Figure 3 - probabilistic keep-instructions LRU vs LRU");
    report
        .line("paper: higher P (keep instructions) helps, lower P hurts; range roughly -2.5..+5%");
    report.line("");
    for col in motivation::fig03(&config, &scale) {
        report.row(
            format!("P = {:.1}", col.p),
            format!("geomean {:+.2}%", col.geomean),
        );
    }
    report.finish();
}
