//! The segmented result store under [`crate::simcache::SimCache`].
//!
//! The original store kept one flat file per key, which was safe but
//! unbounded and wasteful for campaign-as-a-service workloads: millions
//! of small files, no way to prune, and no append locality. This module
//! restructures persistence into *segments* — append-only files under
//! `<dir>/segments/`, each owned by exactly one writer — while keeping
//! every entry in the unchanged v4 layout (magic, version, key,
//! checksum, payload; see [`crate::simcache`]) so legacy flat files
//! remain readable.
//!
//! Concurrency model, designed for many processes sharing one
//! directory:
//!
//! * **Single-writer segments.** A process appends only to segments it
//!   created itself (names embed the process id and a sequence number,
//!   claimed with `create_new` so a recycled pid can never collide with
//!   a dead writer's file). Each record is written with one `write_all`
//!   call, so concurrent readers observe either the whole record or a
//!   short file.
//! * **Lock-free readers.** Readers take no file lock ever: they stat
//!   and scan segments, remember how far each segment validated, and
//!   pick up new records appended by other processes on the next
//!   refresh. A torn or truncated tail simply stops the scan at the
//!   last valid record — it is retried on the next refresh and degrades
//!   to a miss until the record completes.
//! * **Pruning degrades to miss.** When `ITPX_SIMCACHE_MAX_MB` caps the
//!   store, whole segments are unlinked oldest-first (never the active
//!   one). A reader holding an index entry into a pruned segment gets a
//!   failed open, drops the entry, and reports a miss — never an error
//!   and never a wrong result.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Magic prefix of every segment file.
const SEG_MAGIC: &[u8; 8] = b"ITPXSEG1";
/// Segment container version (the *entries* carry their own version).
const SEG_VERSION: u32 = 1;
/// Size of the segment header: magic + container version.
const SEG_HEADER: u64 = 12;
/// A record larger than this is treated as corruption, not data.
const MAX_RECORD: u32 = 64 << 20;
/// Give up claiming a writer segment after this many name collisions.
const MAX_SEQ_PROBES: u32 = 10_000;

/// Size/rollover configuration for a [`SegmentStore`].
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Total on-disk budget (segments + legacy flat files); `None` is
    /// unbounded. Enforced after each append by pruning whole segments
    /// oldest-first.
    pub max_bytes: Option<u64>,
    /// Roll the active segment once it grows past this size, so old data
    /// ages into prunable (inactive) segments.
    pub segment_target: u64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            max_bytes: None,
            segment_target: 4 << 20,
        }
    }
}

impl StoreConfig {
    /// A config capped at `max_bytes`, rolling segments early enough
    /// that pruning can always get under the cap (quarter-cap segments,
    /// floored so tests with tiny caps still roll).
    pub fn capped(max_bytes: u64) -> Self {
        Self {
            max_bytes: Some(max_bytes),
            segment_target: (max_bytes / 4).clamp(4 << 10, 4 << 20),
        }
    }
}

/// Where one entry lives inside a segment.
#[derive(Debug, Clone)]
struct EntryLoc {
    segment: PathBuf,
    offset: u64,
    len: u32,
}

/// The active appender: this process's own segment.
#[derive(Debug)]
struct Writer {
    path: PathBuf,
    file: File,
    written: u64,
    seq: u32,
}

/// Per-segment scan cursor: bytes validated so far (header included).
type ScanMap = BTreeMap<PathBuf, u64>;

#[derive(Debug, Default)]
struct State {
    index: BTreeMap<u64, EntryLoc>,
    scanned: ScanMap,
    writer: Option<Writer>,
}

/// A multi-process-safe segmented entry store. See the module docs for
/// the concurrency model.
#[derive(Debug)]
pub struct SegmentStore {
    dir: PathBuf,
    config: StoreConfig,
    state: Mutex<State>,
}

impl SegmentStore {
    /// A store rooted at `dir` (created lazily on first append).
    pub fn new(dir: PathBuf, config: StoreConfig) -> Self {
        Self {
            dir,
            config,
            state: Mutex::new(State::default()),
        }
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn segments_dir(&self) -> PathBuf {
        self.dir.join("segments")
    }

    fn legacy_file(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.bin"))
    }

    /// Looks `key` up: index first, then a directory refresh (picking up
    /// appends from other processes), then the legacy flat file. Every
    /// failure mode — pruned segment, torn record, corrupt bytes —
    /// degrades to `None`.
    pub fn get(&self, key: u64) -> Option<Vec<u8>> {
        let mut state = self.state.lock().expect("segment store poisoned");
        if let Some(bytes) = self.read_indexed(&mut state, key) {
            return Some(bytes);
        }
        self.refresh(&mut state);
        if let Some(bytes) = self.read_indexed(&mut state, key) {
            return Some(bytes);
        }
        drop(state);
        // Legacy flat file from the pre-segment store layout.
        let bytes = std::fs::read(self.legacy_file(key)).ok()?;
        crate::simcache::validate_entry_bytes(&bytes).filter(|&k| k == key)?;
        Some(bytes)
    }

    /// Reads and re-validates the indexed record for `key`, dropping the
    /// index entry when the segment vanished (pruned by another process)
    /// or no longer validates.
    fn read_indexed(&self, state: &mut State, key: u64) -> Option<Vec<u8>> {
        let loc = state.index.get(&key)?.clone();
        match read_record(&loc) {
            Some(bytes) if crate::simcache::validate_entry_bytes(&bytes) == Some(key) => {
                Some(bytes)
            }
            _ => {
                state.index.remove(&key);
                None
            }
        }
    }

    /// Appends `entry` (a fully-encoded v4 entry for `key`) to this
    /// process's segment. Best-effort: IO failures only cost a future
    /// re-simulation, so they are deliberately swallowed.
    pub fn insert(&self, key: u64, entry: &[u8]) {
        let mut state = self.state.lock().expect("segment store poisoned");
        if self.append(&mut state, key, entry).is_none() {
            state.writer = None;
        }
        if self.config.max_bytes.is_some() {
            self.prune(&mut state);
        }
    }

    fn append(&self, state: &mut State, key: u64, entry: &[u8]) -> Option<()> {
        self.ensure_writer(state)?;
        let writer = state.writer.as_mut()?;
        let offset = SEG_HEADER + writer.written;
        let mut record = Vec::with_capacity(entry.len() + 4);
        record.extend_from_slice(&(entry.len() as u32).to_le_bytes());
        record.extend_from_slice(entry);
        writer.file.write_all(&record).ok()?;
        writer.file.flush().ok()?;
        writer.written += record.len() as u64;
        let loc = EntryLoc {
            segment: writer.path.clone(),
            offset,
            len: entry.len() as u32,
        };
        let end = SEG_HEADER + writer.written;
        state.scanned.insert(loc.segment.clone(), end);
        state.index.insert(key, loc);
        Some(())
    }

    /// Creates (or rolls) the single-writer segment for this process.
    fn ensure_writer(&self, state: &mut State) -> Option<()> {
        let roll = state
            .writer
            .as_ref()
            .is_some_and(|w| SEG_HEADER + w.written >= self.config.segment_target);
        if state.writer.is_some() && !roll {
            return Some(());
        }
        let dir = self.segments_dir();
        std::fs::create_dir_all(&dir).ok()?;
        let pid = std::process::id();
        let mut seq = state.writer.as_ref().map_or(0, |w| w.seq + 1);
        for _ in 0..MAX_SEQ_PROBES {
            let path = dir.join(format!("seg-{pid:08x}-{seq:05}.seg"));
            // `create_new` is the cross-process arbiter: whoever creates
            // the file owns it, even across pid reuse.
            match OpenOptions::new().append(true).create_new(true).open(&path) {
                Ok(mut file) => {
                    let mut header = Vec::with_capacity(SEG_HEADER as usize);
                    header.extend_from_slice(SEG_MAGIC);
                    header.extend_from_slice(&SEG_VERSION.to_le_bytes());
                    file.write_all(&header).ok()?;
                    file.flush().ok()?;
                    state.scanned.insert(path.clone(), SEG_HEADER);
                    state.writer = Some(Writer {
                        path,
                        file,
                        written: 0,
                        seq,
                    });
                    return Some(());
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => seq += 1,
                Err(_) => return None,
            }
        }
        None
    }

    /// Rescans the segments directory: new segments and new bytes in
    /// known segments are validated record by record and indexed. The
    /// scan cursor only advances past fully-valid records, so a torn
    /// concurrent append is retried on the next refresh instead of being
    /// skipped or served.
    fn refresh(&self, state: &mut State) {
        let dir = self.segments_dir();
        let Ok(entries) = std::fs::read_dir(&dir) else {
            return;
        };
        let mut paths: Vec<PathBuf> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "seg"))
            .collect();
        paths.sort();
        for path in paths {
            let start = *state.scanned.get(&path).unwrap_or(&0);
            let Some((found, end)) = scan_segment(&path, start) else {
                continue;
            };
            for (key, offset, len) in found {
                state.index.insert(
                    key,
                    EntryLoc {
                        segment: path.clone(),
                        offset,
                        len,
                    },
                );
            }
            state.scanned.insert(path, end);
        }
    }

    /// Total bytes on disk: segments plus legacy flat files.
    pub fn disk_bytes(&self) -> u64 {
        let file_len = |p: &Path| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0);
        let mut total = 0;
        for dir in [self.segments_dir(), self.dir.clone()] {
            let Ok(entries) = std::fs::read_dir(&dir) else {
                continue;
            };
            for path in entries.flatten().map(|e| e.path()) {
                let seg = path.extension().is_some_and(|e| e == "seg");
                let legacy = path.extension().is_some_and(|e| e == "bin");
                if seg || legacy {
                    total += file_len(&path);
                }
            }
        }
        total
    }

    /// Unlinks oldest files first until the store fits `max_bytes`:
    /// inactive segments by modification time (the active writer segment
    /// is never pruned), then legacy flat files. Unlinking is safe under
    /// concurrency — a reader mid-record keeps its open fd; a reader
    /// arriving later gets a failed open and reports a miss. All IO
    /// errors are swallowed: pruning must never break a lookup.
    fn prune(&self, state: &mut State) {
        let Some(cap) = self.config.max_bytes else {
            return;
        };
        let mut total = self.disk_bytes();
        if total <= cap {
            return;
        }
        let active = state.writer.as_ref().map(|w| w.path.clone());
        let mut victims = prunable_files(&self.segments_dir(), "seg");
        victims.extend(prunable_files(&self.dir, "bin"));
        for (path, len, _) in victims {
            if total <= cap {
                break;
            }
            if Some(&path) == active.as_ref() {
                continue;
            }
            if std::fs::remove_file(&path).is_ok() {
                total = total.saturating_sub(len);
                state.scanned.remove(&path);
                state.index.retain(|_, loc| loc.segment != path);
            }
        }
    }
}

/// Files under `dir` with extension `ext`, oldest first (modification
/// time, then name for a stable order on coarse clocks). The mtime is
/// prune *ordering* only — it never feeds a cache key or a payload.
// itpx-allow: std-time prune-age ordering only, never feeds cache keys or persisted results
type Victim = (PathBuf, u64, std::time::SystemTime);

fn prunable_files(dir: &Path, ext: &str) -> Vec<Victim> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut out: Vec<Victim> = entries
        .flatten()
        .filter_map(|e| {
            let path = e.path();
            if path.extension().is_none_or(|x| x != ext) {
                return None;
            }
            let meta = e.metadata().ok()?;
            let mtime = meta.modified().ok()?;
            Some((path, meta.len(), mtime))
        })
        .collect();
    out.sort_by(|a, b| (a.2, &a.0).cmp(&(b.2, &b.0)));
    out
}

/// Reads one length-prefixed record body at a known location.
fn read_record(loc: &EntryLoc) -> Option<Vec<u8>> {
    let mut file = File::open(&loc.segment).ok()?;
    file.seek(SeekFrom::Start(loc.offset + 4)).ok()?;
    let mut bytes = vec![0u8; loc.len as usize];
    file.read_exact(&mut bytes).ok()?;
    Some(bytes)
}

/// Validates records in `path` starting at byte `start`; returns the
/// `(key, record offset, entry len)` triples found and the new cursor.
/// Stops (without advancing) at the first incomplete or invalid record.
#[allow(clippy::type_complexity)]
fn scan_segment(path: &Path, start: u64) -> Option<(Vec<(u64, u64, u32)>, u64)> {
    let mut file = File::open(path).ok()?;
    let end = file.metadata().ok()?.len();
    let mut at = start;
    if at == 0 {
        // New segment: validate the container header once.
        if end < SEG_HEADER {
            return Some((Vec::new(), 0));
        }
        let mut header = [0u8; SEG_HEADER as usize];
        file.read_exact(&mut header).ok()?;
        if &header[..8] != SEG_MAGIC
            || u32::from_le_bytes(header[8..12].try_into().ok()?) != SEG_VERSION
        {
            // Foreign container: mark fully scanned so it is never
            // rescanned, and index nothing from it.
            return Some((Vec::new(), end));
        }
        at = SEG_HEADER;
    } else {
        file.seek(SeekFrom::Start(at)).ok()?;
    }
    let mut found = Vec::new();
    while at + 4 <= end {
        let mut len_bytes = [0u8; 4];
        if file.read_exact(&mut len_bytes).is_err() {
            break;
        }
        let len = u32::from_le_bytes(len_bytes);
        if len == 0 || len > MAX_RECORD || at + 4 + len as u64 > end {
            break; // incomplete or implausible: retry from `at` next time
        }
        let mut bytes = vec![0u8; len as usize];
        if file.read_exact(&mut bytes).is_err() {
            break;
        }
        let Some(key) = crate::simcache::validate_entry_bytes(&bytes) else {
            break; // torn or corrupt: never advance past it
        };
        found.push((key, at, len));
        at += 4 + len as u64;
    }
    Some((found, at))
}
