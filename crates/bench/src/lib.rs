//! Experiment harness: reproduces every table and figure of the paper's
//! evaluation.
//!
//! Each `fig*` binary in `src/bin/` regenerates one figure; `run_all`
//! regenerates everything and writes text reports under
//! `target/experiments/`. The shared machinery lives here:
//!
//! * [`harness`] — parallel sweep runner (N workloads × M configurations),
//!   scale controls via `ITPX_*` environment variables.
//! * [`report`] — table formatting, violin-style distribution summaries,
//!   geomean aggregation, and report files.
//! * [`experiments`] — one module per paper figure, returning structured
//!   results so integration tests can assert the paper's claims.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod csv;
pub mod experiments;
pub mod harness;
pub mod plot;
pub mod report;
pub mod stats_ci;

pub use csv::CsvSink;
pub use harness::{RunScale, Sweep};
pub use report::{Distribution, Report};
pub use stats_ci::{bootstrap_geomean_ci, Comparison, GeomeanCi};
