//! Experiment harness: reproduces every table and figure of the paper's
//! evaluation.
//!
//! Each `fig*` binary in `src/bin/` regenerates one figure; `run_all`
//! regenerates everything and writes text reports under
//! `target/experiments/`. The shared machinery lives here:
//!
//! * [`harness`] — parallel sweep runner (N workloads × M configurations),
//!   scale controls via `ITPX_*` environment variables.
//! * [`campaign`] — the campaign engine: figures submit batches of
//!   content-addressed simulation requests that are deduplicated, served
//!   from the [`simcache`], and scheduled as one flat job queue — either
//!   in-process or split across cooperating shard processes
//!   (`ITPX_SHARDS`).
//! * [`simcache`] — memoized simulation results, in memory and persisted
//!   under `target/simcache/` (opt out with `ITPX_SIMCACHE=0`).
//! * [`store`] — the segmented on-disk store under the simcache:
//!   append-only segments, lock-free concurrent readers, single-writer
//!   appenders, size-capped pruning (`ITPX_SIMCACHE_MAX_MB`).
//! * [`serve`] — a dependency-free HTTP/1.1 server (`itpx-serve` binary)
//!   that serves warm campaign results and schedules cold ones.
//! * [`env`] — validated parsing of the `ITPX_*` variables (junk values
//!   warn once instead of being silently ignored).
//! * [`figures`] — one report builder per figure, all driven by a shared
//!   [`campaign::Campaign`].
//! * [`report`] — table formatting, violin-style distribution summaries,
//!   geomean aggregation, and report files.
//! * [`experiments`] — one module per paper figure, returning structured
//!   results so integration tests can assert the paper's claims.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod campaign;
pub mod csv;
pub mod env;
pub mod experiments;
pub mod figures;
pub mod harness;
pub mod plot;
pub mod report;
pub mod serve;
pub mod simcache;
pub mod stats_ci;
pub mod store;

pub use campaign::{Campaign, Executor, SimRequest, SimUnit, WorkQueue};
pub use csv::CsvSink;
pub use harness::{RunScale, Sweep};
pub use report::{Distribution, Report};
pub use simcache::SimCache;
pub use stats_ci::{bootstrap_geomean_ci, Comparison, GeomeanCi};
pub use store::{SegmentStore, StoreConfig};
