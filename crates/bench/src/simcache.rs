//! Content-addressed memoization of simulation results.
//!
//! Simulations are deterministic functions of their configuration, so the
//! campaign engine caches each [`SimulationOutput`] under the 64-bit
//! fingerprint of everything that determined it (see
//! [`crate::campaign::SimRequest::key`]). Results live in an in-process
//! map and, for reuse across `run_all` invocations, as one small binary
//! file per key under `target/simcache/`.
//!
//! The on-disk format is versioned: entries start with a magic tag, a
//! schema version, the key they claim to hold, and an FNV-1a checksum of
//! the payload. An entry that is truncated, bit-flipped, carries a stale
//! version, or disagrees with the key it was looked up under is ignored
//! (the run falls back to simulating and rewrites it) — the structural
//! decoder alone cannot catch a flipped bit inside a fixed-width
//! counter, which is what the checksum is for.
//!
//! Persistence is layered on the [`crate::store::SegmentStore`]: entries
//! append to single-writer segment files that any number of concurrent
//! reader processes share lock-free, with legacy flat `<key>.bin` files
//! from the pre-segment layout still readable. The entry layout itself
//! (v4) is unchanged by the segmentation — only the container moved.
//! The cache toggle comes from `ITPX_SIMCACHE` via [`crate::env`] (only
//! `0`/`false`/`off` disable it; junk values warn and keep the default),
//! and `ITPX_SIMCACHE_MAX_MB` caps the on-disk footprint (oldest
//! segments pruned first; pruning degrades to a miss, never an error).

use crate::store::{SegmentStore, StoreConfig};
use itpx_cpu::{LevelReport, SimulationOutput, ThreadOutput, WalkerSummary};
use itpx_trace::TierSchedule;
use itpx_types::{Fnv1a, LevelId, OnlineMean, StructStats};
#[cfg(test)]
use std::path::Path;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// File magic: identifies simcache entries.
const MAGIC: &[u8; 8] = b"ITPXSIMC";
/// Schema version; bump on any change to the serialized layout.
/// v2 added the per-level `cache_levels` section; v3 added the payload
/// checksum after the key; v4 added the tiered execution schedule.
const VERSION: u32 = 4;

/// A process-wide simulation-result cache with disk persistence.
#[derive(Debug)]
pub struct SimCache {
    enabled: bool,
    store: Option<SegmentStore>,
    mem: Mutex<std::collections::BTreeMap<u64, SimulationOutput>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SimCache {
    /// A cache persisting under `dir` (`None` keeps it memory-only),
    /// with an unbounded on-disk footprint.
    pub fn new(dir: Option<PathBuf>) -> Self {
        Self::with_config(dir, StoreConfig::default())
    }

    /// A cache persisting under `dir` with explicit store limits — the
    /// constructor behind `ITPX_SIMCACHE_MAX_MB` and the pruning tests.
    pub fn with_config(dir: Option<PathBuf>, config: StoreConfig) -> Self {
        Self {
            enabled: true,
            store: dir.map(|d| SegmentStore::new(d, config)),
            mem: Mutex::new(std::collections::BTreeMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The standard configuration: persistence under `target/simcache/`,
    /// disabled with `ITPX_SIMCACHE=0` (or `false`/`off`), capped by
    /// `ITPX_SIMCACHE_MAX_MB` (unset or `0` = unbounded). Unrecognized
    /// values keep the defaults and warn once, rather than being
    /// silently interpreted.
    pub fn from_env() -> Self {
        let enabled = crate::env::switch_from_env("ITPX_SIMCACHE", true);
        let config = match crate::env::simcache_max_bytes_from_env() {
            Some(cap) => StoreConfig::capped(cap),
            None => StoreConfig::default(),
        };
        Self {
            enabled,
            ..Self::with_config(Some(PathBuf::from("target/simcache")), config)
        }
    }

    /// A cache that never stores or serves anything (every lookup misses).
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::new(None)
        }
    }

    /// Whether lookups can ever hit.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Lookups served from memory or disk so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that required a fresh simulation so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Bytes the backing store currently occupies on disk (0 when
    /// memory-only) — what `ITPX_SIMCACHE_MAX_MB` caps.
    pub fn disk_bytes(&self) -> u64 {
        self.store.as_ref().map_or(0, SegmentStore::disk_bytes)
    }

    /// The cached output for `key`, consulting memory first, then the
    /// segmented store. Counts a hit or miss either way.
    pub fn get(&self, key: u64) -> Option<SimulationOutput> {
        let found = self.lookup(key);
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// [`Self::get`] without touching the hit/miss counters — the
    /// sharded executor polls with this while waiting for peer shards,
    /// and polling must not distort the campaign's cache accounting.
    pub fn peek(&self, key: u64) -> Option<SimulationOutput> {
        self.lookup(key)
    }

    fn lookup(&self, key: u64) -> Option<SimulationOutput> {
        if !self.enabled {
            return None;
        }
        if let Some(out) = self.mem.lock().expect("simcache poisoned").get(&key) {
            return Some(out.clone());
        }
        let bytes = self.store.as_ref()?.get(key)?;
        let out = decode_entry_bytes(&bytes, key)?;
        self.mem
            .lock()
            .expect("simcache poisoned")
            .insert(key, out.clone());
        Some(out)
    }

    /// Stores `out` under `key` in memory and (best-effort) in the
    /// segmented store.
    pub fn insert(&self, key: u64, out: &SimulationOutput) {
        if !self.enabled {
            return;
        }
        self.mem
            .lock()
            .expect("simcache poisoned")
            .insert(key, out.clone());
        if let Some(store) = &self.store {
            // Persistence failures (read-only disk, races, pruning) only
            // cost a re-simulation later, so they are not errors.
            store.insert(key, &entry_bytes(key, out));
        }
    }
}

/// Encodes one fully self-validating v4 entry: magic, version, key,
/// payload checksum, payload. This is the byte layout shared by legacy
/// flat files and segment records.
pub(crate) fn entry_bytes(key: u64, out: &SimulationOutput) -> Vec<u8> {
    let mut payload = Vec::with_capacity(512);
    encode_output(&mut payload, out);
    let mut buf = Vec::with_capacity(payload.len() + 28);
    buf.extend_from_slice(MAGIC);
    put_u32(&mut buf, VERSION);
    put_u64(&mut buf, key);
    put_u64(&mut buf, payload_checksum(&payload));
    buf.extend_from_slice(&payload);
    buf
}

/// Structurally validates entry bytes (magic, version, checksum, clean
/// decode, no trailing garbage) and returns the key the entry claims to
/// hold. Cheap enough for segment scans; callers still match the key
/// against what they looked up.
pub(crate) fn validate_entry_bytes(bytes: &[u8]) -> Option<u64> {
    let mut r = Reader { bytes };
    if r.take(MAGIC.len())? != MAGIC.as_slice() || r.u32()? != VERSION {
        return None;
    }
    let key = r.u64()?;
    if r.u64()? != payload_checksum(r.bytes) {
        return None;
    }
    decode_output(&mut r)?;
    if r.bytes.is_empty() {
        Some(key)
    } else {
        None
    }
}

/// Decodes entry bytes previously produced by [`entry_bytes`] (or the
/// legacy flat-file writer), rejecting anything that does not validate
/// as an entry for `key`.
pub(crate) fn decode_entry_bytes(bytes: &[u8], key: u64) -> Option<SimulationOutput> {
    let mut r = Reader { bytes };
    if r.take(MAGIC.len())? != MAGIC.as_slice() {
        return None;
    }
    if r.u32()? != VERSION || r.u64()? != key {
        return None;
    }
    if r.u64()? != payload_checksum(r.bytes) {
        return None;
    }
    let out = decode_output(&mut r)?;
    // Trailing garbage marks a corrupted entry.
    if r.bytes.is_empty() {
        Some(out)
    } else {
        None
    }
}

/// Writes one legacy-layout flat file — kept for the compatibility tests
/// that pin "pre-segment entries still serve".
#[cfg(test)]
fn write_entry(path: &Path, key: u64, out: &SimulationOutput) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, entry_bytes(key, out))
}

/// FNV-1a over the serialized payload. Structural decoding alone accepts a
/// bit flip inside any fixed-width counter; this rejects it.
fn payload_checksum(payload: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write_bytes(payload);
    h.finish()
}

/// Reads and validates one legacy-layout flat file.
#[cfg(test)]
fn read_entry(path: &Path, key: u64) -> Option<SimulationOutput> {
    decode_entry_bytes(&std::fs::read(path).ok()?, key)
}

fn encode_output(buf: &mut Vec<u8>, out: &SimulationOutput) {
    put_str(buf, &out.preset);
    put_str(buf, &out.llc_policy);
    put_u32(buf, out.threads.len() as u32);
    for t in &out.threads {
        put_str(buf, &t.workload);
        put_u64(buf, t.instructions);
        put_u64(buf, t.cycles);
        put_u64(buf, t.itrans_stall_cycles);
        put_u64(buf, t.mispredictions);
    }
    put_u64(buf, out.tiers.window);
    put_u64(buf, out.tiers.fast_forward);
    put_u64(buf, out.tiers.windows);
    for s in [
        &out.itlb, &out.dtlb, &out.stlb, &out.l1i, &out.l1d, &out.l2c, &out.llc,
    ] {
        put_stats(buf, s);
    }
    put_u64(buf, out.walker.walks);
    put_u64(buf, out.walker.instruction_walks);
    put_u64(buf, out.walker.data_walks);
    put_f64(buf, out.walker.avg_latency);
    put_f64(buf, out.walker.avg_memory_refs);
    put_u64(buf, out.dram_reads);
    put_u64(buf, out.dram_writes);
    match out.xptp_enabled_fraction {
        Some(f) => {
            buf.push(1);
            put_f64(buf, f);
        }
        None => buf.push(0),
    }
    put_u32(buf, out.cache_levels.len() as u32);
    for level in &out.cache_levels {
        buf.push(level.id.code());
        put_stats(buf, &level.stats);
    }
}

fn decode_output(r: &mut Reader<'_>) -> Option<SimulationOutput> {
    let preset = r.string()?;
    let llc_policy = r.string()?;
    let n_threads = r.u32()? as usize;
    // An implausible thread count means corruption; cap before allocating.
    if n_threads > 16 {
        return None;
    }
    let mut threads = Vec::with_capacity(n_threads);
    for _ in 0..n_threads {
        threads.push(ThreadOutput {
            workload: r.string()?,
            instructions: r.u64()?,
            cycles: r.u64()?,
            itrans_stall_cycles: r.u64()?,
            mispredictions: r.u64()?,
        });
    }
    let tiers = TierSchedule {
        window: r.u64()?,
        fast_forward: r.u64()?,
        windows: r.u64()?,
    };
    let mut stats = Vec::with_capacity(7);
    for _ in 0..7 {
        stats.push(r.stats()?);
    }
    let mut stats = stats.into_iter();
    // 7 entries were just decoded, in field order.
    let (itlb, dtlb, stlb, l1i, l1d, l2c, llc) = (
        stats.next()?,
        stats.next()?,
        stats.next()?,
        stats.next()?,
        stats.next()?,
        stats.next()?,
        stats.next()?,
    );
    let walker = WalkerSummary {
        walks: r.u64()?,
        instruction_walks: r.u64()?,
        data_walks: r.u64()?,
        avg_latency: r.f64()?,
        avg_memory_refs: r.f64()?,
    };
    let dram_reads = r.u64()?;
    let dram_writes = r.u64()?;
    let xptp_enabled_fraction = match r.u8()? {
        0 => None,
        1 => Some(r.f64()?),
        _ => return None,
    };
    let n_levels = r.u32()? as usize;
    // The chain never exceeds 2 private + MAX_SHARED_LEVELS shared levels;
    // anything larger means corruption.
    if n_levels > 8 {
        return None;
    }
    let mut cache_levels = Vec::with_capacity(n_levels);
    for _ in 0..n_levels {
        let id = LevelId::from_code(r.u8()?)?;
        cache_levels.push(LevelReport {
            id,
            stats: r.stats()?,
        });
    }
    Some(SimulationOutput {
        preset,
        llc_policy,
        threads,
        tiers,
        itlb,
        dtlb,
        stlb,
        l1i,
        l1d,
        l2c,
        llc,
        cache_levels,
        walker,
        dram_reads,
        dram_writes,
        xptp_enabled_fraction,
    })
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    // Bit-exact round-trip: never format or round floats.
    put_u64(buf, v.to_bits());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_stats(buf: &mut Vec<u8>, s: &StructStats) {
    let (accesses, misses, latency) = s.raw_parts();
    for v in accesses.iter().chain(misses.iter()) {
        put_u64(buf, *v);
    }
    let (count, sum) = latency.raw_parts();
    put_u64(buf, count);
    put_f64(buf, sum);
}

/// A bounds-checked little-endian reader; every accessor returns `None`
/// past the end, so corrupted files degrade to a cache miss.
struct Reader<'a> {
    bytes: &'a [u8],
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.bytes.len() < n {
            return None;
        }
        let (head, tail) = self.bytes.split_at(n);
        self.bytes = tail;
        Some(head)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }

    fn string(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    fn stats(&mut self) -> Option<StructStats> {
        let mut accesses = [0u64; 4];
        let mut misses = [0u64; 4];
        for a in &mut accesses {
            *a = self.u64()?;
        }
        for m in &mut misses {
            *m = self.u64()?;
        }
        let count = self.u64()?;
        let sum = self.f64()?;
        Some(StructStats::from_raw_parts(
            accesses,
            misses,
            OnlineMean::from_raw_parts(count, sum),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itpx_core::Preset;
    use itpx_cpu::{Simulation, SystemConfig};
    use itpx_trace::WorkloadSpec;

    fn sample_output() -> SimulationOutput {
        let w = WorkloadSpec::server_like(3)
            .instructions(5_000)
            .warmup(1_000);
        Simulation::single_thread(&SystemConfig::asplos25(), Preset::ItpXptp, &w).run()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("itpx-simcache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trip_is_exact() {
        let out = sample_output();
        let dir = temp_dir("roundtrip");
        let path = dir.join("0000000000000007.bin");
        write_entry(&path, 7, &out).expect("write");
        let back = read_entry(&path, 7).expect("read");
        assert_eq!(out, back, "serialized output must round-trip exactly");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_key_is_rejected() {
        let out = sample_output();
        let dir = temp_dir("wrongkey");
        let path = dir.join("entry.bin");
        write_entry(&path, 7, &out).expect("write");
        assert!(read_entry(&path, 8).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_and_stale_files_fall_back() {
        let out = sample_output();
        let dir = temp_dir("corrupt");
        let path = dir.join("entry.bin");
        write_entry(&path, 7, &out).expect("write");
        let good = std::fs::read(&path).expect("read bytes");

        // Truncated.
        std::fs::write(&path, &good[..good.len() / 2]).expect("truncate");
        assert!(read_entry(&path, 7).is_none());

        // Trailing garbage.
        let mut long = good.clone();
        long.push(0xEE);
        std::fs::write(&path, &long).expect("extend");
        assert!(read_entry(&path, 7).is_none());

        // Stale schema version.
        let mut stale = good.clone();
        stale[8] = VERSION as u8 + 1;
        std::fs::write(&path, &stale).expect("restamp");
        assert!(read_entry(&path, 7).is_none());

        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        std::fs::write(&path, &bad).expect("remagic");
        assert!(read_entry(&path, 7).is_none());

        // The untouched bytes still decode.
        std::fs::write(&path, &good).expect("restore");
        assert_eq!(read_entry(&path, 7), Some(out));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flips_anywhere_in_the_payload_are_rejected() {
        let out = sample_output();
        let dir = temp_dir("bitflip");
        let path = dir.join("entry.bin");
        write_entry(&path, 7, &out).expect("write");
        let good = std::fs::read(&path).expect("read bytes");
        // Header is magic(8) + version(4) + key(8) + checksum(8).
        let payload_start = 28;
        assert!(good.len() > payload_start);
        // Flipping a single bit in any payload byte must degrade to a
        // miss — counters are fixed-width, so without the checksum these
        // bytes would decode "successfully" into a wrong result.
        for offset in [payload_start, payload_start + 9, good.len() - 1] {
            let mut bad = good.clone();
            bad[offset] ^= 0x01;
            std::fs::write(&path, &bad).expect("corrupt");
            assert!(
                read_entry(&path, 7).is_none(),
                "bit flip at byte {offset} must be rejected"
            );
        }
        // A flipped checksum (with an intact payload) is rejected too.
        let mut bad = good;
        bad[20] ^= 0x01;
        std::fs::write(&path, &bad).expect("corrupt checksum");
        assert!(read_entry(&path, 7).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The one on-disk segment file a fresh cache wrote, by construction.
    fn only_segment(dir: &Path) -> PathBuf {
        let mut segs: Vec<PathBuf> = std::fs::read_dir(dir.join("segments"))
            .expect("segments dir")
            .flatten()
            .map(|e| e.path())
            .collect();
        assert_eq!(segs.len(), 1, "expected exactly one segment");
        segs.remove(0)
    }

    #[test]
    fn corrupted_segments_degrade_to_miss_and_rewrite_cleanly() {
        let out = sample_output();
        let dir = temp_dir("degrade");
        let cache = SimCache::new(Some(dir.clone()));
        cache.insert(9, &out);
        let seg = only_segment(&dir);
        let good = std::fs::read(&seg).expect("segment exists on disk");

        for (label, bytes) in [
            ("truncated", good[..good.len() / 3].to_vec()),
            ("bit-flipped", {
                let mut b = good.clone();
                b[good.len() / 2] ^= 0x10;
                b
            }),
        ] {
            let _ = std::fs::remove_dir_all(dir.join("segments"));
            std::fs::create_dir_all(dir.join("segments")).expect("recreate");
            std::fs::write(&seg, &bytes).expect("corrupt");
            // A fresh instance (fresh process) must treat the damaged
            // segment as a miss — never panic, never serve garbage.
            let fresh = SimCache::new(Some(dir.clone()));
            assert_eq!(fresh.get(9), None, "{label} segment must miss");
            assert_eq!((fresh.hits(), fresh.misses()), (0, 1));
            // Re-inserting (what the campaign does after re-simulating)
            // appends a fresh record so the next process hits again.
            fresh.insert(9, &out);
            let next = SimCache::new(Some(dir.clone()));
            assert_eq!(next.get(9), Some(out.clone()), "{label} entry rewritten");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Entries written by the pre-segment flat-file layout must keep
    /// serving: the v4 entry bytes are unchanged, only the container
    /// around them moved.
    #[test]
    fn legacy_flat_entries_still_serve() {
        let out = sample_output();
        let dir = temp_dir("legacy");
        let key = 0x1234_5678_9abc_def0_u64;
        let path = dir.join(format!("{key:016x}.bin"));
        write_entry(&path, key, &out).expect("write legacy entry");

        let cache = SimCache::new(Some(dir.clone()));
        assert_eq!(cache.get(key), Some(out), "legacy entry serves");
        assert_eq!((cache.hits(), cache.misses()), (1, 0));
        // A wrong key against the same file stays a miss.
        assert_eq!(cache.get(key ^ 1), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_serves_from_disk_across_instances() {
        let dir = temp_dir("instances");
        let out = sample_output();
        let a = SimCache::new(Some(dir.clone()));
        assert_eq!(a.get(42), None);
        a.insert(42, &out);
        assert_eq!(a.get(42), Some(out.clone()));
        assert_eq!((a.hits(), a.misses()), (1, 1));

        // A fresh instance (fresh process, conceptually) reads the file.
        let b = SimCache::new(Some(dir.clone()));
        assert_eq!(b.get(42), Some(out));
        assert_eq!((b.hits(), b.misses()), (1, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_cache_never_serves() {
        let c = SimCache::disabled();
        let out = sample_output();
        c.insert(1, &out);
        assert_eq!(c.get(1), None);
        assert_eq!(c.misses(), 1);
    }
}
