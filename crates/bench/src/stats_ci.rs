//! Bootstrap confidence intervals for policy comparisons.
//!
//! Per-workload speedups vary; a geomean alone can hide that a comparison
//! hinges on one or two outliers. [`bootstrap_geomean_ci`] resamples the
//! per-workload improvements with replacement and reports a percentile
//! confidence interval for the geometric-mean speedup, and
//! [`Comparison::summarize`] packages a full A-vs-B verdict.

use itpx_types::stats::geomean_speedup;
use itpx_types::Rng64;

/// A bootstrap confidence interval for a geomean improvement (percent).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeomeanCi {
    /// Point estimate (percent).
    pub geomean_pct: f64,
    /// Lower bound of the interval (percent).
    pub lo_pct: f64,
    /// Upper bound of the interval (percent).
    pub hi_pct: f64,
    /// Confidence level in `[0, 1]` (e.g. 0.95).
    pub level: f64,
}

impl GeomeanCi {
    /// `true` if the interval excludes zero (a decisive win or loss).
    pub fn is_decisive(&self) -> bool {
        self.lo_pct > 0.0 || self.hi_pct < 0.0
    }
}

/// Computes a percentile-bootstrap CI over per-workload improvements given
/// in percent. Deterministic for a given `seed`.
///
/// # Panics
///
/// Panics if `improvements` is empty, `resamples == 0`, or `level` is not
/// in `(0, 1)`.
pub fn bootstrap_geomean_ci(
    improvements_pct: &[f64],
    resamples: usize,
    level: f64,
    seed: u64,
) -> GeomeanCi {
    assert!(!improvements_pct.is_empty(), "no samples");
    assert!(resamples > 0, "need resamples");
    assert!(level > 0.0 && level < 1.0, "level must be in (0,1)");
    let fractions: Vec<f64> = improvements_pct.iter().map(|x| x / 100.0).collect();
    let mut rng = Rng64::new(seed);
    let mut estimates: Vec<f64> = (0..resamples)
        .map(|_| {
            let sample: Vec<f64> = (0..fractions.len())
                .map(|_| fractions[rng.index(fractions.len())])
                .collect();
            geomean_speedup(&sample) * 100.0
        })
        .collect();
    estimates.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let tail = (1.0 - level) / 2.0;
    let idx =
        |p: f64| ((p * (estimates.len() - 1) as f64).round() as usize).min(estimates.len() - 1);
    GeomeanCi {
        geomean_pct: geomean_speedup(&fractions) * 100.0,
        lo_pct: estimates[idx(tail)],
        hi_pct: estimates[idx(1.0 - tail)],
        level,
    }
}

/// An A-vs-B comparison over matched per-workload IPCs.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Name of the candidate configuration.
    pub candidate: String,
    /// Name of the baseline configuration.
    pub baseline: String,
    /// Per-workload improvements, percent.
    pub improvements_pct: Vec<f64>,
    /// Bootstrap interval for the geomean.
    pub ci: GeomeanCi,
    /// Number of workloads where the candidate won outright.
    pub wins: usize,
}

impl Comparison {
    /// Builds a comparison from matched IPC vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors are empty or differ in length.
    pub fn summarize(
        candidate: impl Into<String>,
        baseline: impl Into<String>,
        candidate_ipc: &[f64],
        baseline_ipc: &[f64],
    ) -> Self {
        assert_eq!(candidate_ipc.len(), baseline_ipc.len(), "mismatched runs");
        assert!(!candidate_ipc.is_empty(), "no runs");
        let improvements_pct: Vec<f64> = candidate_ipc
            .iter()
            .zip(baseline_ipc)
            .map(|(c, b)| (c / b - 1.0) * 100.0)
            .collect();
        let wins = improvements_pct.iter().filter(|&&x| x > 0.0).count();
        let ci = bootstrap_geomean_ci(&improvements_pct, 2000, 0.95, 0xC1);
        Self {
            candidate: candidate.into(),
            baseline: baseline.into(),
            improvements_pct,
            ci,
            wins,
        }
    }
}

impl std::fmt::Display for Comparison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} vs {}: {:+.2}% (95% CI [{:+.2}, {:+.2}]), wins {}/{}{}",
            self.candidate,
            self.baseline,
            self.ci.geomean_pct,
            self.ci.lo_pct,
            self.ci.hi_pct,
            self.wins,
            self.improvements_pct.len(),
            if self.ci.is_decisive() {
                ""
            } else {
                " (not decisive)"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ci_brackets_the_point_estimate() {
        let ci = bootstrap_geomean_ci(&[5.0, 7.0, 9.0, 6.0, 8.0], 1000, 0.95, 1);
        assert!(ci.lo_pct <= ci.geomean_pct && ci.geomean_pct <= ci.hi_pct);
        assert!(ci.is_decisive(), "uniformly positive samples are decisive");
    }

    #[test]
    fn mixed_samples_are_not_decisive() {
        let ci = bootstrap_geomean_ci(&[-6.0, 5.0, -4.0, 6.0], 1000, 0.95, 2);
        assert!(!ci.is_decisive(), "{ci:?}");
    }

    #[test]
    fn ci_is_deterministic_per_seed() {
        let a = bootstrap_geomean_ci(&[1.0, 2.0, 3.0], 500, 0.9, 7);
        let b = bootstrap_geomean_ci(&[1.0, 2.0, 3.0], 500, 0.9, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn comparison_counts_wins() {
        let c = Comparison::summarize("new", "old", &[1.1, 0.9, 1.2], &[1.0, 1.0, 1.0]);
        assert_eq!(c.wins, 2);
        assert!(c.to_string().contains("new vs old"));
    }

    #[test]
    #[should_panic(expected = "mismatched")]
    fn mismatched_lengths_panic() {
        let _ = Comparison::summarize("a", "b", &[1.0], &[1.0, 2.0]);
    }
}
