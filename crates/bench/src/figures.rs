//! One report builder per reproduced figure, all driven by a shared
//! [`Campaign`].
//!
//! The `fig*` binaries are thin wrappers over these functions, and
//! `run_all` iterates [`ALL`] in-process so every figure draws from the
//! same scheduler and simulation cache.

use crate::campaign::Campaign;
use crate::experiments::{
    calibrate, consolidation, depth_sweep, fig08, fig09, motivation, sensitivity,
};
use crate::report::{Distribution, Report};
use itpx_core::presets::{BuildConfig, LlcChoice};
use itpx_core::Preset;
use itpx_cpu::SystemConfig;
use itpx_trace::{qualcomm_like_suite, spec_like_suite};
use itpx_types::stats::geomean_speedup;

/// A named figure: what `run_all` iterates and `bench_campaign` times.
#[derive(Debug, Clone, Copy)]
pub struct Figure {
    /// Binary/report name (`fig08`, `calibrate`, ...).
    pub name: &'static str,
    /// Builds the figure's report through the campaign.
    pub build: fn(&Campaign) -> Report,
}

/// Every reproduced figure, in `run_all` order.
pub const ALL: &[Figure] = &[
    Figure {
        name: "calibrate",
        build: calibrate_report,
    },
    Figure {
        name: "fig01",
        build: fig01,
    },
    Figure {
        name: "fig02",
        build: fig02,
    },
    Figure {
        name: "fig03",
        build: fig03,
    },
    Figure {
        name: "fig04",
        build: fig04,
    },
    Figure {
        name: "fig08",
        build: fig08,
    },
    Figure {
        name: "fig09",
        build: fig09,
    },
    Figure {
        name: "fig11",
        build: fig11,
    },
    Figure {
        name: "fig12",
        build: fig12,
    },
    Figure {
        name: "fig13",
        build: fig13,
    },
    Figure {
        name: "fig14",
        build: fig14,
    },
    Figure {
        name: "ablations",
        build: ablations,
    },
    Figure {
        name: "ext_emissary",
        build: ext_emissary,
    },
    Figure {
        name: "ext_tship",
        build: ext_tship,
    },
    Figure {
        name: "depth_sweep",
        build: depth_sweep_report,
    },
    Figure {
        name: "consolidation",
        build: consolidation_report,
    },
];

/// Looks a figure up by its binary name.
pub fn by_name(name: &str) -> Option<&'static Figure> {
    ALL.iter().find(|f| f.name == name)
}

/// The calibration table (LRU baseline characteristics per workload).
pub fn calibrate_report(campaign: &Campaign) -> Report {
    let scale = campaign.scale();
    let config = SystemConfig::asplos25();
    let mut report = Report::new("Workload calibration (LRU baseline)");
    report.line(format!(
        "scale: {} workloads x {} instructions (+{} warmup), {} host threads",
        scale.workloads, scale.instructions, scale.warmup, scale.host_threads
    ));
    report.line("");
    report.line("targets (paper): server STLB MPKI >= 1, iMPKI up to ~0.9 (Fig 2),");
    report.line("itrans ~12.5% at 64-entry ITLB (Fig 1); SPEC: iMPKI ~0, itrans ~0%.");
    report.line("");

    report.line("-- Qualcomm-Server-like suite --");
    let rows =
        calibrate::calibration_table(campaign, &config, &qualcomm_like_suite(scale.workloads));
    report.line(calibrate::format_rows(&rows));

    report.line("-- SPEC-CPU-like suite --");
    let rows = calibrate::calibration_table(
        campaign,
        &config,
        &spec_like_suite((scale.workloads / 2).max(2)),
    );
    report.line(calibrate::format_rows(&rows));
    report
}

/// Figure 1: instruction-address-translation cycles vs ITLB size.
pub fn fig01(campaign: &Campaign) -> Report {
    let config = SystemConfig::asplos25();
    let mut report = Report::new("Figure 1 - instruction address translation cycles vs ITLB size");
    report
        .line("paper: server ~12.5% at 64-128 entries, needs >1024 entries to vanish; SPEC ~0.03%");
    report.line("");
    report.line(format!("{:<8} {:>6} {:>10}", "suite", "ITLB", "itrans%"));
    for cell in motivation::fig01(campaign, &config) {
        report.line(format!(
            "{:<8} {:>6} {:>9.2}%",
            cell.suite,
            cell.itlb_entries,
            cell.mean * 100.0
        ));
    }
    report
}

/// Figure 2: STLB instruction MPKI per suite.
pub fn fig02(campaign: &Campaign) -> Report {
    let config = SystemConfig::asplos25();
    let mut report = Report::new("Figure 2 - STLB instruction MPKI per suite");
    report.line("paper: server up to ~0.9 iMPKI (scaled runs sit higher); SPEC ~0");
    report.line("");
    for row in motivation::fig02(campaign, &config) {
        report.row(
            format!("{} mean iMPKI", row.suite),
            format!("{:.3}", row.mean),
        );
        report.row(
            format!("{} distribution", row.suite),
            Distribution::of(&row.impki),
        );
    }
    report
}

/// Figure 3: probabilistic keep-instructions LRU vs LRU.
pub fn fig03(campaign: &Campaign) -> Report {
    let config = SystemConfig::asplos25();
    let mut report = Report::new("Figure 3 - probabilistic keep-instructions LRU vs LRU");
    report
        .line("paper: higher P (keep instructions) helps, lower P hurts; range roughly -2.5..+5%");
    report.line("");
    for col in motivation::fig03(campaign, &config) {
        report.row(
            format!("P = {:.1}", col.p),
            format!("geomean {:+.2}%", col.geomean),
        );
    }
    report
}

/// Figure 4: cache MPKI breakdown under an instruction-keeping STLB.
pub fn fig04(campaign: &Campaign) -> Report {
    let config = SystemConfig::asplos25();
    let mut report = Report::new("Figure 4 - cache MPKI breakdown under instruction-keeping STLB");
    report.line("paper: keeping instructions raises dtMPKI (data page-walk misses) at L2C/LLC");
    report.line("");
    for bar in motivation::fig04(campaign, &config) {
        report.row(
            format!("{} / {}", bar.level, bar.stlb_policy),
            bar.breakdown,
        );
    }
    report
}

/// Figure 8: IPC improvement over LRU, single-thread and SMT.
pub fn fig08(campaign: &Campaign) -> Report {
    let scale = campaign.scale();
    let config = SystemConfig::asplos25();
    let mut report = Report::new("Figure 8 - IPC improvement over LRU (violin summaries, %)");
    report.line(format!(
        "scale: {} workloads / {} SMT pairs x {} instructions",
        scale.workloads, scale.smt_pairs, scale.instructions
    ));
    report.line("paper geomeans (1T): TDRRIP +9.3, PTP +7.1, CHiRP ~0, iTP +2.2, iTP+xPTP +18.9");
    report.line("");
    report.line("(a) single hardware thread");
    report.line(fig08::format_columns(&fig08::single_thread(
        campaign, &config,
    )));
    report.line("paper geomeans (2T): TDRRIP +8.5, PTP ~0, iTP +0.3, iTP+xPTP +11.4");
    report.line("");
    report.line("(b) two hardware threads");
    report.line(fig08::format_columns(&fig08::two_threads(
        campaign, &config,
    )));
    report
}

/// Figures 9 and 10: structure MPKI and miss latency per policy.
pub fn fig09(campaign: &Campaign) -> Report {
    let config = SystemConfig::asplos25();
    let mut report = Report::new("Figure 9+10 - structure MPKI and miss latency per policy");
    report.line("paper (1T): iTP+xPTP cuts STLB miss latency ~46%, L2C dPTE MPKI 1.0->0.4,");
    report.line("raises L2C MPKI, lowers LLC MPKI; iTP trades iMPKI down for dMPKI up (Fig 10)");
    report.line("");
    report.line("(a) single hardware thread");
    report.line(fig09::format_rows(&fig09::run(campaign, &config, false)));
    report.line("(b) two hardware threads");
    report.line(fig09::format_rows(&fig09::run(campaign, &config, true)));
    report
}

/// Figure 11: sensitivity to the LLC replacement policy.
pub fn fig11(campaign: &Campaign) -> Report {
    let config = SystemConfig::asplos25();
    let mut report = Report::new("Figure 11 - sensitivity to LLC replacement policy");
    report.line("paper (1T): iTP consistent +1.4..2.3; iTP+xPTP +18.9 (LRU), +15.8 (SHiP), +1.6 (Mockingjay)");
    report.line("");
    for smt in [false, true] {
        report.line(if smt {
            "(b) two hardware threads"
        } else {
            "(a) single hardware thread"
        });
        for cell in sensitivity::fig11(campaign, &config, smt) {
            report.row(
                format!("LLC={:<11} {}", cell.llc.name(), cell.preset),
                format!("{:+.2}%", cell.geomean_pct),
            );
        }
        report.line("");
    }
    report
}

/// Figure 12: sensitivity to ITLB size.
pub fn fig12(campaign: &Campaign) -> Report {
    let config = SystemConfig::asplos25();
    let mut report = Report::new("Figure 12 - sensitivity to ITLB size");
    report.line("paper: gains consistent for <=512-entry ITLBs, shrink at 1024 (1T)");
    report.line("");
    for smt in [false, true] {
        report.line(if smt {
            "(b) two hardware threads"
        } else {
            "(a) single hardware thread"
        });
        for cell in sensitivity::fig12(campaign, &config, smt) {
            report.row(
                format!("ITLB={:<5} {}", cell.itlb_entries, cell.preset),
                format!("{:+.2}%", cell.geomean_pct),
            );
        }
        report.line("");
    }
    report
}

/// Figure 13: allocating code and data on 2 MiB pages.
pub fn fig13(campaign: &Campaign) -> Report {
    let config = SystemConfig::asplos25();
    let mut report = Report::new("Figure 13 - allocating code and data on 2MB pages");
    report.line("paper: all gains shrink as the 2MB fraction grows; iTP+xPTP stays on top");
    report.line("");
    for smt in [false, true] {
        report.line(if smt {
            "(b) two hardware threads"
        } else {
            "(a) single hardware thread"
        });
        for cell in sensitivity::fig13(campaign, &config, smt) {
            report.row(
                format!("2MB={:>3.0}% {}", cell.fraction * 100.0, cell.preset),
                format!("{:+.2}%", cell.geomean_pct),
            );
        }
        report.line("");
    }
    report
}

/// Figure 14: unified vs split STLB.
pub fn fig14(campaign: &Campaign) -> Report {
    let config = SystemConfig::asplos25();
    let mut report = Report::new("Figure 14 - unified vs split STLB");
    report.line("paper: same-size split slightly behind unified+iTP+xPTP; 3072 unified+iTP+xPTP");
    report.line("beats 3072 split; improvements over 1536-entry unified LRU baseline");
    report.line("");
    for smt in [false, true] {
        report.line(if smt {
            "(b) two hardware threads"
        } else {
            "(a) single hardware thread"
        });
        for bar in sensitivity::fig14(campaign, &config, smt) {
            report.row(bar.label.clone(), format!("{:+.2}%", bar.geomean_pct));
        }
        report.line("");
    }
    report
}

/// Parameter ablations: iTP's N/M, xPTP's K, the adaptive threshold T1.
pub fn ablations(campaign: &Campaign) -> Report {
    let config = SystemConfig::asplos25();
    let mut report = Report::new("Ablations - iTP N/M, xPTP K, adaptive T1");
    report.line(
        "paper: N/M have little effect; K matters most (mid-stack best); iTP+xPTP geomean shown",
    );
    report.line("");
    report.line("-- iTP insertion/promotion depths --");
    for c in sensitivity::ablation_nm(campaign, &config) {
        report.row(c.setting.clone(), format!("{:+.2}%", c.geomean_pct));
    }
    report.line("");
    report.line("-- xPTP protection threshold K --");
    for c in sensitivity::ablation_k(campaign, &config) {
        report.row(c.setting.clone(), format!("{:+.2}%", c.geomean_pct));
    }
    report.line("");
    report.line("-- adaptive threshold T1 (misses per 1000-instruction epoch) --");
    for c in sensitivity::ablation_t1(campaign, &config) {
        report.row(c.setting.clone(), format!("{:+.2}%", c.geomean_pct));
    }
    report
}

/// Extension: hierarchy depth × L2C size sweep through the level chain.
pub fn depth_sweep_report(campaign: &Campaign) -> Report {
    let scale = campaign.scale();
    let mut report =
        Report::new("Extension - hierarchy depth x L2C size sweep (iTP+xPTP over LRU)");
    report.line("chains: 2-level (no LLC), 3-level (Table 1), 4-level (extra 1 MiB L3);");
    report.line("uplift is iTP+xPTP's geomean IPC gain; MPKI/rpki are the LRU baseline's");
    report.line("");
    report.line(depth_sweep::format_cells(&depth_sweep::run(
        campaign, scale,
    )));
    report
}

/// Extension: multi-tenant consolidation sweep (iTP+xPTP vs LRU at
/// 1/2/4/8 tenants under flushing round-robin switches).
pub fn consolidation_report(campaign: &Campaign) -> Report {
    let scale = campaign.scale();
    let mut report = Report::new("Extension - multi-tenant consolidation (iTP+xPTP over LRU)");
    report.line("tenants share one hardware thread via round-robin quanta with flushing");
    report.line("switches; uplift is iTP+xPTP's geomean IPC gain, walks/MPKI are the LRU");
    report.line("baseline's (how fast consolidation inflates translation pressure)");
    report.line("");
    report.line(consolidation::format_cells(&consolidation::run(
        campaign, scale,
    )));
    report
}

/// Extension: iTP+xPTP with Emissary-style code preservation at the L2C.
pub fn ext_emissary(campaign: &Campaign) -> Report {
    let scale = campaign.scale();
    let config = SystemConfig::asplos25();
    let suite: Vec<_> = qualcomm_like_suite(scale.workloads)
        .into_iter()
        .map(|w| scale.apply(w))
        .collect();
    let mut requests: Vec<crate::campaign::SimRequest> = Vec::new();
    for preset in [Preset::Lru, Preset::ItpXptp, Preset::ItpXptpEmissary] {
        requests.extend(
            suite
                .iter()
                .map(|w| crate::campaign::SimRequest::single(&config, preset, w)),
        );
    }
    let outputs = campaign.run_batch(requests);
    let base = &outputs[..suite.len()];

    let mut report = Report::new("Extension - iTP plus xPTP with Emissary-style code preservation");
    report.line("paper section 7: preserving critical code blocks at L2C on top of xPTP");
    report.line("\"has the potential to provide larger performance gains than iTP+xPTP\"");
    report.line("");
    for (i, preset) in [Preset::ItpXptp, Preset::ItpXptpEmissary]
        .iter()
        .enumerate()
    {
        let outs = &outputs[(i + 1) * suite.len()..(i + 2) * suite.len()];
        let ups: Vec<f64> = outs
            .iter()
            .zip(base)
            .map(|(o, b)| o.speedup_pct_over(b) / 100.0)
            .collect();
        let l1i_mpki: f64 = outs
            .iter()
            .map(|o| o.l1i.mpki(o.instructions()))
            .sum::<f64>()
            / outs.len() as f64;
        report.row(
            preset.name(),
            format!(
                "geomean {:+.2}%   L1I MPKI {:.2}",
                geomean_speedup(&ups) * 100.0,
                l1i_mpki
            ),
        );
    }
    report
}

/// Extension: the full T-DRRIP + T-SHiP configuration vs the paper's.
pub fn ext_tship(campaign: &Campaign) -> Report {
    let scale = campaign.scale();
    let config = SystemConfig::asplos25();
    let suite: Vec<_> = qualcomm_like_suite(scale.workloads)
        .into_iter()
        .map(|w| scale.apply(w))
        .collect();
    let cases = [
        (Preset::Tdrrip, LlcChoice::Lru, "TDRRIP (paper config)"),
        (Preset::Lru, LlcChoice::Ship, "SHiP LLC only (control)"),
        (Preset::Tdrrip, LlcChoice::TShip, "TDRRIP + T-SHiP LLC"),
        (Preset::ItpXptp, LlcChoice::Ship, "iTP+xPTP + SHiP LLC"),
        (Preset::ItpXptp, LlcChoice::TShip, "iTP+xPTP + T-SHiP LLC"),
        (Preset::ItpXptp, LlcChoice::Lru, "iTP+xPTP"),
    ];
    let mut requests: Vec<crate::campaign::SimRequest> = suite
        .iter()
        .map(|w| crate::campaign::SimRequest::single(&config, Preset::Lru, w))
        .collect();
    for (preset, llc, _) in &cases {
        let build = BuildConfig {
            llc: *llc,
            ..BuildConfig::default()
        };
        requests.extend(
            suite.iter().map(|w| {
                crate::campaign::SimRequest::single(&config, *preset, w).with_build(build)
            }),
        );
    }
    let outputs = campaign.run_batch(requests);
    let base = &outputs[..suite.len()];

    let mut report = Report::new("Extension - full TDRRIP plus T-SHiP at the LLC");
    report.line("the original ISPASS'22 proposal pairs T-DRRIP (L2C) with T-SHiP (LLC);");
    report.line("the reproduced paper uses only the L2C half. Geomean over LRU:");
    report.line("");
    for (i, (_, _, label)) in cases.iter().enumerate() {
        let outs = &outputs[(i + 1) * suite.len()..(i + 2) * suite.len()];
        let ups: Vec<f64> = outs
            .iter()
            .zip(base)
            .map(|(o, b)| o.speedup_pct_over(b) / 100.0)
            .collect();
        report.row(label, format!("{:+.2}%", geomean_speedup(&ups) * 100.0));
    }
    report
}
