//! Campaign-as-a-service: a dependency-free HTTP/1.1 front-end over the
//! campaign engine.
//!
//! The workspace is offline, so this is a hand-rolled server on
//! [`std::net::TcpListener`] — one accept thread feeding a small worker
//! pool over an mpsc channel. Warm requests are answered straight from
//! the segmented store; cold ones are scheduled onto the campaign's
//! runner pool and cached for every later caller.
//!
//! Routes (all `GET`):
//!
//! * `/healthz` — liveness probe.
//! * `/figures` — the reproducible figure names, one per line.
//! * `/figure/<name>` — builds (or re-serves) that figure's full text
//!   report.
//! * `/sim?preset=<name>&workload=server:<seed>|spec:<seed>` — one
//!   simulation; optional `instructions=` and `warmup=` override the
//!   campaign scale's run lengths.
//! * `/metrics` — Prometheus-style text: store hits/misses, queue
//!   depth, request totals, per-figure latency histograms.
//!
//! Start it with the `itpx-serve` binary (`ITPX_SERVE_ADDR` picks the
//! bind address) or embed it with [`start`].

use crate::campaign::{Campaign, SimRequest};
use crate::figures;
use itpx_core::Preset;
use itpx_cpu::{SimulationOutput, SystemConfig};
use itpx_trace::WorkloadSpec;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

/// Upper bounds of the per-figure latency histogram buckets, in
/// milliseconds (the final `+Inf` bucket is implicit).
const LATENCY_BUCKETS_MS: [u64; 8] = [1, 5, 25, 100, 500, 2_500, 10_000, 60_000];

/// Largest request head (request line + headers) the server will read.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// One figure's latency histogram: log-spaced buckets plus sum/count,
/// rendered in Prometheus text exposition format.
#[derive(Debug, Default, Clone)]
struct Histogram {
    buckets: [u64; LATENCY_BUCKETS_MS.len() + 1],
    sum_ms: u64,
    count: u64,
}

impl Histogram {
    fn record(&mut self, ms: u64) {
        let slot = LATENCY_BUCKETS_MS
            .iter()
            .position(|&le| ms <= le)
            .unwrap_or(LATENCY_BUCKETS_MS.len());
        self.buckets[slot] += 1;
        self.sum_ms += ms;
        self.count += 1;
    }
}

/// Shared server counters, scraped by `/metrics`.
#[derive(Debug, Default)]
struct Metrics {
    requests_total: AtomicU64,
    queue_depth: AtomicU64,
    figure_latency: Mutex<BTreeMap<&'static str, Histogram>>,
}

impl Metrics {
    fn record_figure(&self, name: &'static str, ms: u64) {
        self.figure_latency
            .lock()
            .expect("metrics lock")
            .entry(name)
            .or_default()
            .record(ms);
    }

    fn render(&self, campaign: &Campaign) -> String {
        let mut out = String::new();
        let mut counter = |name: &str, help: &str, value: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
            ));
        };
        counter(
            "itpx_http_requests_total",
            "HTTP requests handled.",
            self.requests_total.load(Ordering::Relaxed),
        );
        counter(
            "itpx_store_hits",
            "Simulation results served from the segmented store.",
            campaign.cache().hits(),
        );
        counter(
            "itpx_store_misses",
            "Simulation results not found in the store.",
            campaign.cache().misses(),
        );
        counter(
            "itpx_sims_executed",
            "Simulations executed by this process.",
            campaign.executed(),
        );
        out.push_str(&format!(
            "# HELP itpx_http_queue_depth Connections waiting for a worker.\n\
             # TYPE itpx_http_queue_depth gauge\n\
             itpx_http_queue_depth {}\n",
            self.queue_depth.load(Ordering::Relaxed)
        ));
        out.push_str(
            "# HELP itpx_figure_latency_ms Figure build latency, milliseconds.\n\
             # TYPE itpx_figure_latency_ms histogram\n",
        );
        let hists = self.figure_latency.lock().expect("metrics lock");
        for (figure, h) in hists.iter() {
            let mut cumulative = 0;
            for (slot, &le) in LATENCY_BUCKETS_MS.iter().enumerate() {
                cumulative += h.buckets[slot];
                out.push_str(&format!(
                    "itpx_figure_latency_ms_bucket{{figure=\"{figure}\",le=\"{le}\"}} {cumulative}\n"
                ));
            }
            out.push_str(&format!(
                "itpx_figure_latency_ms_bucket{{figure=\"{figure}\",le=\"+Inf\"}} {}\n\
                 itpx_figure_latency_ms_sum{{figure=\"{figure}\"}} {}\n\
                 itpx_figure_latency_ms_count{{figure=\"{figure}\"}} {}\n",
                h.count, h.sum_ms, h.count
            ));
        }
        out
    }
}

/// A running server: address, stop switch, accept-thread handle.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains the workers, and joins the accept thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop blocks in accept(); a throwaway self-connect
        // wakes it so it can observe the stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.shutdown();
        }
    }
}

/// Binds `addr` and serves the campaign on `workers` handler threads.
///
/// Returns once the listener is bound and accepting; the handle's
/// [`ServerHandle::stop`] shuts the server down cleanly.
pub fn start(addr: &str, campaign: Arc<Campaign>, workers: usize) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let metrics = Arc::new(Metrics::default());
    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    for _ in 0..workers.max(1) {
        let rx = Arc::clone(&rx);
        let campaign = Arc::clone(&campaign);
        let metrics = Arc::clone(&metrics);
        std::thread::spawn(move || loop {
            let conn = rx.lock().expect("worker queue lock").recv();
            let Ok(stream) = conn else { break };
            metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
            handle_connection(stream, &campaign, &metrics);
        });
    }
    let accept_stop = Arc::clone(&stop);
    let accept = std::thread::spawn(move || {
        for conn in listener.incoming() {
            if accept_stop.load(Ordering::SeqCst) {
                break;
            }
            if let Ok(stream) = conn {
                metrics.queue_depth.fetch_add(1, Ordering::Relaxed);
                if tx.send(stream).is_err() {
                    break;
                }
            }
        }
        // Dropping `tx` unblocks every worker's recv().
    });
    Ok(ServerHandle {
        addr,
        stop,
        accept: Some(accept),
    })
}

/// Reads the request head, routes it, writes one response, closes.
fn handle_connection(mut stream: TcpStream, campaign: &Campaign, metrics: &Metrics) {
    let Some((method, target)) = read_request_head(&mut stream) else {
        respond(&mut stream, 400, "bad request\n");
        return;
    };
    metrics.requests_total.fetch_add(1, Ordering::Relaxed);
    if method != "GET" {
        respond(&mut stream, 405, "only GET is served here\n");
        return;
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target.as_str(), ""),
    };
    let (status, body) = route(path, query, campaign, metrics);
    respond(&mut stream, status, &body);
}

/// Parses `GET /path?query HTTP/1.1` plus headers (discarded), bounded
/// by [`MAX_REQUEST_BYTES`].
fn read_request_head(stream: &mut TcpStream) -> Option<(String, String)> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") && buf.len() < MAX_REQUEST_BYTES {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let request_line = head.lines().next()?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next()?.to_string();
    let target = parts.next()?.to_string();
    Some((method, target))
}

/// Dispatches one parsed request to a route handler.
fn route(path: &str, query: &str, campaign: &Campaign, metrics: &Metrics) -> (u16, String) {
    match path {
        "/healthz" => (200, "ok\n".to_string()),
        "/figures" => {
            let names: Vec<&str> = figures::ALL.iter().map(|f| f.name).collect();
            (200, format!("{}\n", names.join("\n")))
        }
        "/metrics" => (200, metrics.render(campaign)),
        "/sim" => serve_sim(query, campaign),
        _ => match path.strip_prefix("/figure/") {
            Some(name) => serve_figure(name, campaign, metrics),
            None => (404, format!("no route for {path}\n")),
        },
    }
}

/// Builds (or re-serves from the store) one figure's text report.
fn serve_figure(name: &str, campaign: &Campaign, metrics: &Metrics) -> (u16, String) {
    let Some(figure) = figures::by_name(name) else {
        let known: Vec<&str> = figures::ALL.iter().map(|f| f.name).collect();
        return (
            404,
            format!("unknown figure {name:?}; try: {}\n", known.join(", ")),
        );
    };
    let started = Instant::now();
    let report = (figure.build)(campaign);
    let ms = started.elapsed().as_millis() as u64;
    metrics.record_figure(figure.name, ms);
    (200, report.text().to_string())
}

/// `/sim` — one simulation, campaign-cached like any figure request.
fn serve_sim(query: &str, campaign: &Campaign) -> (u16, String) {
    let params = parse_query(query);
    let Some(preset) = params.get("preset").and_then(|p| preset_by_alias(p)) else {
        let known: Vec<String> = Preset::EVALUATED
            .iter()
            .map(|p| p.name().to_string())
            .collect();
        return (
            400,
            format!("need preset=<name>; one of: {}\n", known.join(", ")),
        );
    };
    let Some(workload) = params.get("workload").and_then(|w| parse_workload(w)) else {
        return (
            400,
            "need workload=server:<seed> or workload=spec:<seed>\n".to_string(),
        );
    };
    let scale = campaign.scale();
    let parse_len = |key: &str, default: u64| {
        params
            .get(key)
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(default)
            .max(1)
    };
    let workload = workload
        .instructions(parse_len("instructions", scale.instructions))
        .warmup(parse_len("warmup", scale.warmup));
    let req = SimRequest::single(&SystemConfig::asplos25(), preset, &workload);
    let out = campaign.run_one(req);
    (200, render_sim(preset, &workload, &out))
}

/// Stable text rendering of one simulation result.
fn render_sim(preset: Preset, workload: &WorkloadSpec, out: &SimulationOutput) -> String {
    format!(
        "preset: {}\nworkload: {}\ninstructions: {}\nipc: {:.4}\n\
         stlb_mpki: {:.4}\nl2c_mpki: {:.4}\nllc_mpki: {:.4}\nitrans_stall: {:.4}\n",
        preset.name(),
        workload.name,
        out.instructions(),
        out.ipc(),
        out.stlb_mpki(),
        out.l2c_mpki(),
        out.llc_mpki(),
        out.itrans_stall_fraction(),
    )
}

/// Splits `a=1&b=2` into a map, minimally percent-decoding values.
fn parse_query(query: &str) -> BTreeMap<String, String> {
    query
        .split('&')
        .filter_map(|pair| pair.split_once('='))
        .map(|(k, v)| (k.to_string(), percent_decode(v)))
        .collect()
}

/// Decodes `%XX` escapes and `+` spaces; junk escapes pass through.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                match (
                    bytes.get(i + 1).and_then(|b| (*b as char).to_digit(16)),
                    bytes.get(i + 2).and_then(|b| (*b as char).to_digit(16)),
                ) {
                    (Some(hi), Some(lo)) => {
                        out.push((hi * 16 + lo) as u8);
                        i += 3;
                    }
                    _ => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Matches a preset by case-and-punctuation-insensitive name
/// (`itp+xptp`, `iTP%2BxPTP`, and `itpxptp` all resolve the same).
fn preset_by_alias(raw: &str) -> Option<Preset> {
    let strip = |s: &str| -> String {
        s.chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .map(|c| c.to_ascii_lowercase())
            .collect()
    };
    let wanted = strip(raw);
    Preset::EVALUATED
        .into_iter()
        .chain([Preset::ItpXptpStatic, Preset::ItpXptpEmissary])
        .find(|p| strip(p.name()) == wanted)
}

/// Parses `server:<seed>` / `spec:<seed>` workload selectors.
fn parse_workload(raw: &str) -> Option<WorkloadSpec> {
    let (family, seed) = raw.split_once(':')?;
    let seed: u64 = seed.parse().ok()?;
    match family {
        "server" => Some(WorkloadSpec::server_like(seed)),
        "spec" => Some(WorkloadSpec::spec_like(seed)),
        _ => None,
    }
}

/// Writes a complete HTTP/1.1 response and flushes.
fn respond(stream: &mut TcpStream, status: u16, body: &str) {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Internal Server Error",
    };
    let response = format!(
        "HTTP/1.1 {status} {reason}\r\n\
         Content-Type: text/plain; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_parsing_decodes_escapes() {
        let q = parse_query("preset=iTP%2BxPTP&workload=server:3&x=a+b");
        assert_eq!(q["preset"], "iTP+xPTP");
        assert_eq!(q["workload"], "server:3");
        assert_eq!(q["x"], "a b");
    }

    #[test]
    fn preset_aliases_are_forgiving() {
        assert_eq!(preset_by_alias("iTP+xPTP"), Some(Preset::ItpXptp));
        assert_eq!(preset_by_alias("itpxptp"), Some(Preset::ItpXptp));
        assert_eq!(preset_by_alias("LRU"), Some(Preset::Lru));
        assert_eq!(preset_by_alias("chirp-tdrrip"), Some(Preset::ChirpTdrrip));
        assert_eq!(preset_by_alias("nonsense"), None);
    }

    #[test]
    fn workload_selectors_parse() {
        assert!(parse_workload("server:7").is_some());
        assert!(parse_workload("spec:1").is_some());
        assert!(parse_workload("desktop:1").is_none());
        assert!(parse_workload("server").is_none());
    }

    #[test]
    fn histogram_buckets_are_cumulative_in_render() {
        let mut h = Histogram::default();
        h.record(0);
        h.record(3);
        h.record(100_000);
        assert_eq!(h.count, 3);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[LATENCY_BUCKETS_MS.len()], 1);
    }
}
