//! CSV export of per-workload results — the equivalent of the paper
//! artifact's `parse_data.sh`, which collects per-run statistics into CSV
//! files for plotting.

use itpx_cpu::SimulationOutput;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Column header shared by all exports.
pub const HEADER: &str = "experiment,policy,llc,workload,threads,ipc,speedup_pct,\
stlb_mpki,stlb_impki,stlb_dmpki,stlb_miss_lat,l2c_mpki,l2c_dpte_mpki,l2c_miss_lat,\
llc_mpki,llc_miss_lat,itrans_pct,walks,dram_reads";

/// Accumulates per-run rows for one experiment.
#[derive(Debug, Clone)]
pub struct CsvSink {
    experiment: String,
    rows: Vec<String>,
}

impl CsvSink {
    /// Starts a sink for `experiment`.
    pub fn new(experiment: impl Into<String>) -> Self {
        Self {
            experiment: experiment.into(),
            rows: Vec::new(),
        }
    }

    /// Appends one run; `baseline` supplies the speedup column when given.
    pub fn push(&mut self, out: &SimulationOutput, baseline: Option<&SimulationOutput>) {
        let b = out.stlb_breakdown();
        let speedup = baseline
            .map(|base| out.speedup_pct_over(base))
            .unwrap_or(0.0);
        let workload = out
            .threads
            .iter()
            .map(|t| t.workload.as_str())
            .collect::<Vec<_>>()
            .join("+");
        let mut row = String::new();
        let _ = write!(
            row,
            "{},{},{},{},{},{:.5},{:.3},{:.4},{:.4},{:.4},{:.2},{:.4},{:.4},{:.2},{:.4},{:.2},{:.3},{},{}",
            self.experiment,
            out.preset,
            out.llc_policy,
            workload,
            out.threads.len(),
            out.ipc(),
            speedup,
            out.stlb_mpki(),
            b.instr,
            b.data,
            out.stlb.avg_miss_latency(),
            out.l2c_mpki(),
            out.l2c_breakdown().data_pte,
            out.l2c.avg_miss_latency(),
            out.llc_mpki(),
            out.llc.avg_miss_latency(),
            out.itrans_stall_fraction() * 100.0,
            out.walker.walks,
            out.dram_reads,
        );
        self.rows.push(row);
    }

    /// Number of rows accumulated.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows have been recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the full CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut s = String::from(HEADER);
        s.push('\n');
        for r in &self.rows {
            s.push_str(r);
            s.push('\n');
        }
        s
    }

    /// Writes to `dir/<experiment>.csv`, creating the directory; returns
    /// the path on success.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, dir: impl AsRef<Path>) -> std::io::Result<PathBuf> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.experiment));
        std::fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itpx_core::Preset;
    use itpx_cpu::{Simulation, SystemConfig};
    use itpx_trace::WorkloadSpec;

    fn run() -> SimulationOutput {
        let cfg = SystemConfig::asplos25();
        let w = WorkloadSpec::server_like(1)
            .instructions(5_000)
            .warmup(1_000);
        Simulation::single_thread(&cfg, Preset::Lru, &w).run()
    }

    #[test]
    fn csv_shape_is_consistent() {
        let out = run();
        let mut sink = CsvSink::new("unit");
        sink.push(&out, None);
        sink.push(&out, Some(&out));
        let csv = sink.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        let cols = HEADER.split(',').count();
        for line in &lines {
            assert_eq!(line.split(',').count(), cols, "ragged row: {line}");
        }
        // Self-relative speedup is zero.
        assert!(lines[2].contains(",0.000,"));
        assert_eq!(sink.len(), 2);
        assert!(!sink.is_empty());
    }

    #[test]
    fn writes_a_file() {
        let out = run();
        let mut sink = CsvSink::new("unit_file");
        sink.push(&out, None);
        let dir = std::env::temp_dir().join("itpx_csv_test");
        let path = sink.write_to(&dir).expect("write");
        let content = std::fs::read_to_string(&path).expect("read back");
        assert!(content.starts_with("experiment,"));
        let _ = std::fs::remove_file(path);
    }
}
