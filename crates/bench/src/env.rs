//! Validated parsing of `ITPX_*` environment variables.
//!
//! The knobs are documented on [`crate::harness::RunScale`] and
//! [`crate::simcache::SimCache`]. Historically a typo like
//! `ITPX_THREADS=eight` or a hostile `ITPX_THREADS=0` fell through
//! *silently* to the default (or worse, to a zero-thread sweep); the
//! parsers here validate, clamp, and report what they rejected. Each
//! distinct complaint is printed to stderr once per process — scale
//! variables are consulted from many figure binaries and a warning per
//! consultation would drown the report output.

use itpx_trace::TierSchedule;
use std::collections::BTreeSet;
use std::sync::Mutex;

/// Complaints already printed, so each is emitted once per process.
static WARNED: Mutex<BTreeSet<String>> = Mutex::new(BTreeSet::new());

/// Prints `message` to stderr unless an identical message was already
/// printed by this process.
pub fn warn_once(message: &str) {
    let mut seen = WARNED.lock().expect("env warn set poisoned");
    if seen.insert(message.to_string()) {
        eprintln!("warning: {message}");
    }
}

/// Parses a numeric environment value. Returns the value to use and an
/// optional complaint:
///
/// * unset → `default`, no complaint;
/// * a valid number below `min` → clamped to `min`, with a complaint
///   (`ITPX_THREADS=0` means a sweep that can never run a job);
/// * non-numeric junk → `default`, with a complaint.
pub fn parse_count(name: &str, raw: Option<&str>, default: u64, min: u64) -> (u64, Option<String>) {
    let Some(raw) = raw else {
        return (default, None);
    };
    match raw.trim().parse::<u64>() {
        Ok(v) if v >= min => (v, None),
        Ok(v) => (
            min,
            Some(format!(
                "{name}={v} is below the minimum {min}; using {min}"
            )),
        ),
        Err(_) => (
            default,
            Some(format!(
                "{name}={raw:?} is not a number; using the default {default}"
            )),
        ),
    }
}

/// Parses a boolean switch. `0`, `false`, and `off` (case-insensitive)
/// disable; `1`, `true`, and `on` enable; unset keeps `default`; anything
/// else keeps `default` with a complaint.
pub fn parse_switch(name: &str, raw: Option<&str>, default: bool) -> (bool, Option<String>) {
    let Some(raw) = raw else {
        return (default, None);
    };
    match raw.trim().to_ascii_lowercase().as_str() {
        "0" | "false" | "off" => (false, None),
        "1" | "true" | "on" => (true, None),
        _ => (
            default,
            Some(format!(
                "{name}={raw:?} is not a recognized switch value \
                 (use 0/false/off or 1/true/on); using the default \
                 ({})",
                if default { "enabled" } else { "disabled" }
            )),
        ),
    }
}

/// Default instructions per cycle-accurate window for env-configured
/// tiered schedules (`ITPX_TIER_WINDOW`).
pub const TIER_WINDOW_DEFAULT: u64 = 20_000;
/// Default fast-forward gap (`ITPX_TIER_FF`). At ~7× functional speed
/// plus the free skip, a 2M gap buys a >10× horizon per unit wall-clock.
pub const TIER_FF_DEFAULT: u64 = 2_000_000;
/// Default window count (`ITPX_TIER_WINDOWS`).
pub const TIER_WINDOWS_DEFAULT: u64 = 5;

/// Parses the three tier knobs into a [`TierSchedule`]. All unset →
/// `default` (normally flat); any set → a tiered schedule where each
/// unset knob takes its documented default. `window`/`windows` clamp to
/// ≥ 1 (a zero-window schedule can never measure anything);
/// `fast_forward` accepts 0 (back-to-back windows). Complaints are
/// returned for the caller to route through [`warn_once`].
pub fn parse_tier_schedule(
    window: Option<&str>,
    fast_forward: Option<&str>,
    windows: Option<&str>,
    default: TierSchedule,
) -> (TierSchedule, Vec<String>) {
    if window.is_none() && fast_forward.is_none() && windows.is_none() {
        return (default, Vec::new());
    }
    let mut complaints = Vec::new();
    let mut take = |name, raw, dflt, min| {
        let (v, complaint) = parse_count(name, raw, dflt, min);
        complaints.extend(complaint);
        v
    };
    let schedule = TierSchedule::tiered(
        take("ITPX_TIER_WINDOW", window, TIER_WINDOW_DEFAULT, 1),
        take("ITPX_TIER_FF", fast_forward, TIER_FF_DEFAULT, 0),
        take("ITPX_TIER_WINDOWS", windows, TIER_WINDOWS_DEFAULT, 1),
    );
    (schedule, complaints)
}

/// [`parse_tier_schedule`] applied to the live environment, with
/// complaints routed through [`warn_once`].
pub fn tier_schedule_from_env(default: TierSchedule) -> TierSchedule {
    let get = |name: &str| std::env::var(name).ok();
    let (window, ff, windows) = (
        get("ITPX_TIER_WINDOW"),
        get("ITPX_TIER_FF"),
        get("ITPX_TIER_WINDOWS"),
    );
    let (schedule, complaints) = parse_tier_schedule(
        window.as_deref(),
        ff.as_deref(),
        windows.as_deref(),
        default,
    );
    for c in &complaints {
        warn_once(c);
    }
    schedule
}

/// Default listen address for `itpx-serve` (`ITPX_SERVE_ADDR`).
pub const SERVE_ADDR_DEFAULT: &str = "127.0.0.1:7425";

/// Parses the shard layout knobs. `ITPX_SHARDS` is the process-count the
/// campaign is split across (min 1, default 1 = classic single-process);
/// `ITPX_SHARD_INDEX` selects this process's key-range chunk and must be
/// below the shard count — an out-of-range index clamps to the last
/// shard with a complaint (running a *duplicate* of another shard would
/// silently waste a whole process). Returns `(shards, index)` plus the
/// complaints for the caller to route through [`warn_once`].
pub fn parse_shard_layout(
    shards_raw: Option<&str>,
    index_raw: Option<&str>,
) -> ((u64, u64), Vec<String>) {
    let mut complaints = Vec::new();
    let (shards, c) = parse_count("ITPX_SHARDS", shards_raw, 1, 1);
    complaints.extend(c);
    let (mut index, c) = parse_count("ITPX_SHARD_INDEX", index_raw, 0, 0);
    complaints.extend(c);
    if index >= shards {
        complaints.push(format!(
            "ITPX_SHARD_INDEX={index} is out of range for ITPX_SHARDS={shards}; \
             using the last shard ({})",
            shards - 1
        ));
        index = shards - 1;
    }
    ((shards, index), complaints)
}

/// [`parse_shard_layout`] applied to the live environment, with
/// complaints routed through [`warn_once`].
pub fn shard_layout_from_env() -> (u64, u64) {
    let shards = std::env::var("ITPX_SHARDS").ok();
    let index = std::env::var("ITPX_SHARD_INDEX").ok();
    let (layout, complaints) = parse_shard_layout(shards.as_deref(), index.as_deref());
    for c in &complaints {
        warn_once(c);
    }
    layout
}

/// Parses `ITPX_SERVE_ADDR`: any string that parses as a socket address
/// passes through; junk falls back to [`SERVE_ADDR_DEFAULT`] with a
/// complaint (a server silently binding the wrong port is worse than a
/// warning).
pub fn parse_serve_addr(raw: Option<&str>) -> (String, Option<String>) {
    let Some(raw) = raw else {
        return (SERVE_ADDR_DEFAULT.to_string(), None);
    };
    let trimmed = raw.trim();
    match trimmed.parse::<std::net::SocketAddr>() {
        Ok(addr) => (addr.to_string(), None),
        Err(_) => (
            SERVE_ADDR_DEFAULT.to_string(),
            Some(format!(
                "ITPX_SERVE_ADDR={raw:?} is not an <ip>:<port> address; \
                 using the default {SERVE_ADDR_DEFAULT}"
            )),
        ),
    }
}

/// [`parse_serve_addr`] applied to the live environment, with the
/// complaint routed through [`warn_once`].
pub fn serve_addr_from_env() -> String {
    let raw = std::env::var("ITPX_SERVE_ADDR").ok();
    let (addr, complaint) = parse_serve_addr(raw.as_deref());
    if let Some(c) = complaint {
        warn_once(&c);
    }
    addr
}

/// Parses `ITPX_SIMCACHE_MAX_MB` into an on-disk byte budget: unset or
/// `0` means unbounded (`None`), anything else caps the segmented store.
/// Junk keeps the default (unbounded) with a complaint.
pub fn parse_simcache_max_bytes(raw: Option<&str>) -> (Option<u64>, Option<String>) {
    let (mb, complaint) = parse_count("ITPX_SIMCACHE_MAX_MB", raw, 0, 0);
    (if mb == 0 { None } else { Some(mb << 20) }, complaint)
}

/// [`parse_simcache_max_bytes`] applied to the live environment, with
/// the complaint routed through [`warn_once`].
pub fn simcache_max_bytes_from_env() -> Option<u64> {
    let raw = std::env::var("ITPX_SIMCACHE_MAX_MB").ok();
    let (cap, complaint) = parse_simcache_max_bytes(raw.as_deref());
    if let Some(c) = complaint {
        warn_once(&c);
    }
    cap
}

/// [`parse_count`] applied to the live environment, with the complaint
/// routed through [`warn_once`].
pub fn count_from_env(name: &str, default: u64, min: u64) -> u64 {
    let raw = std::env::var(name).ok();
    let (value, complaint) = parse_count(name, raw.as_deref(), default, min);
    if let Some(c) = complaint {
        warn_once(&c);
    }
    value
}

/// [`parse_switch`] applied to the live environment, with the complaint
/// routed through [`warn_once`].
pub fn switch_from_env(name: &str, default: bool) -> bool {
    let raw = std::env::var(name).ok();
    let (value, complaint) = parse_switch(name, raw.as_deref(), default);
    if let Some(c) = complaint {
        warn_once(&c);
    }
    value
}

#[cfg(test)]
mod tests {
    use super::*;

    // Only the pure parsers are tested: tests run concurrently in one
    // process, so mutating the real environment would race.

    #[test]
    fn unset_uses_the_default_silently() {
        assert_eq!(parse_count("ITPX_THREADS", None, 4, 1), (4, None));
        assert_eq!(parse_switch("ITPX_SIMCACHE", None, true), (true, None));
    }

    #[test]
    fn valid_values_pass_through_silently() {
        assert_eq!(parse_count("ITPX_THREADS", Some("8"), 4, 1), (8, None));
        assert_eq!(parse_count("ITPX_THREADS", Some(" 2 "), 4, 1), (2, None));
        assert_eq!(
            parse_switch("ITPX_SIMCACHE", Some("0"), true),
            (false, None)
        );
        assert_eq!(
            parse_switch("ITPX_SIMCACHE", Some("off"), true),
            (false, None)
        );
        assert_eq!(
            parse_switch("ITPX_SIMCACHE", Some("1"), false),
            (true, None)
        );
    }

    #[test]
    fn zero_threads_clamps_to_the_minimum_with_a_complaint() {
        let (v, complaint) = parse_count("ITPX_THREADS", Some("0"), 4, 1);
        assert_eq!(v, 1, "a zero-thread sweep can never run a job");
        let c = complaint.expect("clamping must be reported");
        assert!(c.contains("ITPX_THREADS=0"), "{c}");
    }

    #[test]
    fn junk_counts_fall_back_with_a_complaint() {
        for junk in ["eight", "", "-3", "1.5", "0x10"] {
            let (v, complaint) = parse_count("ITPX_WORKLOADS", Some(junk), 16, 1);
            assert_eq!(v, 16, "junk {junk:?} must keep the default");
            let c = complaint.expect("junk must be reported");
            assert!(c.contains("ITPX_WORKLOADS"), "{c}");
        }
    }

    #[test]
    fn junk_switches_keep_the_default_with_a_complaint() {
        let (v, complaint) = parse_switch("ITPX_SIMCACHE", Some("maybe"), true);
        assert!(v, "junk must keep the default");
        assert!(complaint.expect("junk must be reported").contains("maybe"));
        let (v, complaint) = parse_switch("ITPX_SIMCACHE", Some("2"), true);
        assert!(v);
        assert!(complaint.is_some());
    }

    #[test]
    fn tier_knobs_all_unset_keep_the_default() {
        let (s, c) = parse_tier_schedule(None, None, None, TierSchedule::flat());
        assert!(s.is_flat());
        assert!(c.is_empty());
        let d = TierSchedule::tiered(1_000, 5_000, 2);
        assert_eq!(parse_tier_schedule(None, None, None, d).0, d);
    }

    #[test]
    fn tier_knobs_combine_set_values_with_documented_defaults() {
        let (s, c) = parse_tier_schedule(Some("8000"), None, Some("3"), TierSchedule::flat());
        assert_eq!(s, TierSchedule::tiered(8_000, TIER_FF_DEFAULT, 3));
        assert!(c.is_empty());
        // Zero fast-forward is a valid (back-to-back) schedule.
        let (s, c) = parse_tier_schedule(None, Some("0"), None, TierSchedule::flat());
        assert_eq!(
            s,
            TierSchedule::tiered(TIER_WINDOW_DEFAULT, 0, TIER_WINDOWS_DEFAULT)
        );
        assert!(c.is_empty());
    }

    #[test]
    fn tier_knobs_clamp_and_complain() {
        // A zero-instruction window (or zero windows) can never measure
        // anything: clamp to 1 with a complaint instead of panicking in
        // TierSchedule::tiered.
        let (s, c) = parse_tier_schedule(Some("0"), None, Some("0"), TierSchedule::flat());
        assert_eq!(s.window, 1);
        assert_eq!(s.windows, 1);
        assert_eq!(c.len(), 2);
        assert!(c[0].contains("ITPX_TIER_WINDOW=0"), "{}", c[0]);
        assert!(c[1].contains("ITPX_TIER_WINDOWS=0"), "{}", c[1]);
    }

    #[test]
    fn tier_knob_junk_falls_back_with_a_complaint() {
        let (s, c) = parse_tier_schedule(Some("lots"), Some("2e6"), None, TierSchedule::flat());
        assert_eq!(
            s,
            TierSchedule::tiered(TIER_WINDOW_DEFAULT, TIER_FF_DEFAULT, TIER_WINDOWS_DEFAULT)
        );
        assert_eq!(c.len(), 2);
        assert!(c[0].contains("ITPX_TIER_WINDOW"), "{}", c[0]);
        assert!(c[1].contains("ITPX_TIER_FF"), "{}", c[1]);
    }

    #[test]
    fn shard_layout_defaults_to_one_unsharded_process() {
        assert_eq!(parse_shard_layout(None, None), ((1, 0), Vec::new()));
        let ((s, i), c) = parse_shard_layout(Some("4"), Some("2"));
        assert_eq!((s, i), (4, 2));
        assert!(c.is_empty());
    }

    #[test]
    fn shard_index_out_of_range_clamps_with_a_complaint() {
        // index == shards (one past the end) and far beyond both clamp
        // to the last shard; a duplicate shard would silently waste a
        // process.
        for idx in ["2", "17"] {
            let ((s, i), c) = parse_shard_layout(Some("2"), Some(idx));
            assert_eq!((s, i), (2, 1), "ITPX_SHARD_INDEX={idx}");
            assert_eq!(c.len(), 1);
            assert!(c[0].contains("ITPX_SHARD_INDEX"), "{}", c[0]);
        }
        // An unset index with sharding on is shard 0, silently.
        assert_eq!(parse_shard_layout(Some("2"), None), ((2, 0), Vec::new()));
    }

    #[test]
    fn shard_zero_clamps_to_one() {
        let ((s, i), c) = parse_shard_layout(Some("0"), None);
        assert_eq!((s, i), (1, 0), "a zero-shard campaign cannot run");
        assert_eq!(c.len(), 1);
        assert!(c[0].contains("ITPX_SHARDS=0"), "{}", c[0]);
    }

    #[test]
    fn shard_junk_falls_back_with_complaints() {
        let ((s, i), c) = parse_shard_layout(Some("many"), Some("first"));
        assert_eq!((s, i), (1, 0));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn serve_addr_accepts_socket_addresses() {
        assert_eq!(
            parse_serve_addr(None),
            (SERVE_ADDR_DEFAULT.to_string(), None)
        );
        assert_eq!(
            parse_serve_addr(Some("0.0.0.0:8080")),
            ("0.0.0.0:8080".to_string(), None)
        );
        assert_eq!(
            parse_serve_addr(Some(" 127.0.0.1:0 ")),
            ("127.0.0.1:0".to_string(), None)
        );
    }

    #[test]
    fn serve_addr_junk_falls_back_with_a_complaint() {
        for junk in ["localhost", "7425", "http://x:1", ""] {
            let (addr, complaint) = parse_serve_addr(Some(junk));
            assert_eq!(addr, SERVE_ADDR_DEFAULT, "junk {junk:?}");
            let c = complaint.expect("junk must be reported");
            assert!(c.contains("ITPX_SERVE_ADDR"), "{c}");
        }
    }

    #[test]
    fn simcache_cap_zero_and_unset_mean_unbounded() {
        assert_eq!(parse_simcache_max_bytes(None), (None, None));
        assert_eq!(parse_simcache_max_bytes(Some("0")), (None, None));
        let (cap, c) = parse_simcache_max_bytes(Some("64"));
        assert_eq!(cap, Some(64 << 20));
        assert!(c.is_none());
    }

    #[test]
    fn simcache_cap_junk_keeps_unbounded_with_a_complaint() {
        let (cap, complaint) = parse_simcache_max_bytes(Some("big"));
        assert_eq!(cap, None);
        assert!(complaint
            .expect("junk must be reported")
            .contains("ITPX_SIMCACHE_MAX_MB"));
    }

    #[test]
    fn warn_once_deduplicates() {
        // Purely behavioral: the second call must not panic and the set
        // must absorb duplicates (output itself goes to stderr).
        warn_once("difftest-env-test: duplicate complaint");
        warn_once("difftest-env-test: duplicate complaint");
        let seen = WARNED.lock().expect("env warn set poisoned");
        assert_eq!(
            seen.iter()
                .filter(|m| m.contains("difftest-env-test"))
                .count(),
            1
        );
    }
}
