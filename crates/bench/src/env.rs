//! Validated parsing of `ITPX_*` environment variables.
//!
//! The knobs are documented on [`crate::harness::RunScale`] and
//! [`crate::simcache::SimCache`]. Historically a typo like
//! `ITPX_THREADS=eight` or a hostile `ITPX_THREADS=0` fell through
//! *silently* to the default (or worse, to a zero-thread sweep); the
//! parsers here validate, clamp, and report what they rejected. Each
//! distinct complaint is printed to stderr once per process — scale
//! variables are consulted from many figure binaries and a warning per
//! consultation would drown the report output.

use std::collections::BTreeSet;
use std::sync::Mutex;

/// Complaints already printed, so each is emitted once per process.
static WARNED: Mutex<BTreeSet<String>> = Mutex::new(BTreeSet::new());

/// Prints `message` to stderr unless an identical message was already
/// printed by this process.
pub fn warn_once(message: &str) {
    let mut seen = WARNED.lock().expect("env warn set poisoned");
    if seen.insert(message.to_string()) {
        eprintln!("warning: {message}");
    }
}

/// Parses a numeric environment value. Returns the value to use and an
/// optional complaint:
///
/// * unset → `default`, no complaint;
/// * a valid number below `min` → clamped to `min`, with a complaint
///   (`ITPX_THREADS=0` means a sweep that can never run a job);
/// * non-numeric junk → `default`, with a complaint.
pub fn parse_count(name: &str, raw: Option<&str>, default: u64, min: u64) -> (u64, Option<String>) {
    let Some(raw) = raw else {
        return (default, None);
    };
    match raw.trim().parse::<u64>() {
        Ok(v) if v >= min => (v, None),
        Ok(v) => (
            min,
            Some(format!(
                "{name}={v} is below the minimum {min}; using {min}"
            )),
        ),
        Err(_) => (
            default,
            Some(format!(
                "{name}={raw:?} is not a number; using the default {default}"
            )),
        ),
    }
}

/// Parses a boolean switch. `0`, `false`, and `off` (case-insensitive)
/// disable; `1`, `true`, and `on` enable; unset keeps `default`; anything
/// else keeps `default` with a complaint.
pub fn parse_switch(name: &str, raw: Option<&str>, default: bool) -> (bool, Option<String>) {
    let Some(raw) = raw else {
        return (default, None);
    };
    match raw.trim().to_ascii_lowercase().as_str() {
        "0" | "false" | "off" => (false, None),
        "1" | "true" | "on" => (true, None),
        _ => (
            default,
            Some(format!(
                "{name}={raw:?} is not a recognized switch value \
                 (use 0/false/off or 1/true/on); using the default \
                 ({})",
                if default { "enabled" } else { "disabled" }
            )),
        ),
    }
}

/// [`parse_count`] applied to the live environment, with the complaint
/// routed through [`warn_once`].
pub fn count_from_env(name: &str, default: u64, min: u64) -> u64 {
    let raw = std::env::var(name).ok();
    let (value, complaint) = parse_count(name, raw.as_deref(), default, min);
    if let Some(c) = complaint {
        warn_once(&c);
    }
    value
}

/// [`parse_switch`] applied to the live environment, with the complaint
/// routed through [`warn_once`].
pub fn switch_from_env(name: &str, default: bool) -> bool {
    let raw = std::env::var(name).ok();
    let (value, complaint) = parse_switch(name, raw.as_deref(), default);
    if let Some(c) = complaint {
        warn_once(&c);
    }
    value
}

#[cfg(test)]
mod tests {
    use super::*;

    // Only the pure parsers are tested: tests run concurrently in one
    // process, so mutating the real environment would race.

    #[test]
    fn unset_uses_the_default_silently() {
        assert_eq!(parse_count("ITPX_THREADS", None, 4, 1), (4, None));
        assert_eq!(parse_switch("ITPX_SIMCACHE", None, true), (true, None));
    }

    #[test]
    fn valid_values_pass_through_silently() {
        assert_eq!(parse_count("ITPX_THREADS", Some("8"), 4, 1), (8, None));
        assert_eq!(parse_count("ITPX_THREADS", Some(" 2 "), 4, 1), (2, None));
        assert_eq!(
            parse_switch("ITPX_SIMCACHE", Some("0"), true),
            (false, None)
        );
        assert_eq!(
            parse_switch("ITPX_SIMCACHE", Some("off"), true),
            (false, None)
        );
        assert_eq!(
            parse_switch("ITPX_SIMCACHE", Some("1"), false),
            (true, None)
        );
    }

    #[test]
    fn zero_threads_clamps_to_the_minimum_with_a_complaint() {
        let (v, complaint) = parse_count("ITPX_THREADS", Some("0"), 4, 1);
        assert_eq!(v, 1, "a zero-thread sweep can never run a job");
        let c = complaint.expect("clamping must be reported");
        assert!(c.contains("ITPX_THREADS=0"), "{c}");
    }

    #[test]
    fn junk_counts_fall_back_with_a_complaint() {
        for junk in ["eight", "", "-3", "1.5", "0x10"] {
            let (v, complaint) = parse_count("ITPX_WORKLOADS", Some(junk), 16, 1);
            assert_eq!(v, 16, "junk {junk:?} must keep the default");
            let c = complaint.expect("junk must be reported");
            assert!(c.contains("ITPX_WORKLOADS"), "{c}");
        }
    }

    #[test]
    fn junk_switches_keep_the_default_with_a_complaint() {
        let (v, complaint) = parse_switch("ITPX_SIMCACHE", Some("maybe"), true);
        assert!(v, "junk must keep the default");
        assert!(complaint.expect("junk must be reported").contains("maybe"));
        let (v, complaint) = parse_switch("ITPX_SIMCACHE", Some("2"), true);
        assert!(v);
        assert!(complaint.is_some());
    }

    #[test]
    fn warn_once_deduplicates() {
        // Purely behavioral: the second call must not panic and the set
        // must absorb duplicates (output itself goes to stderr).
        warn_once("difftest-env-test: duplicate complaint");
        warn_once("difftest-env-test: duplicate complaint");
        let seen = WARNED.lock().expect("env warn set poisoned");
        assert_eq!(
            seen.iter()
                .filter(|m| m.contains("difftest-env-test"))
                .count(),
            1
        );
    }
}
