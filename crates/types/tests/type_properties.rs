//! Property tests for the primitive types.

use itpx_types::{PageSize, PhysAddr, Rng64, VirtAddr, BLOCK_BYTES};
use proptest::prelude::*;

proptest! {
    #[test]
    fn vpn_offset_roundtrip(raw in any::<u64>(), huge in any::<bool>()) {
        let size = if huge { PageSize::Huge2M } else { PageSize::Base4K };
        let va = VirtAddr::new(raw);
        let rebuilt = va.vpn(size).base(size).0 + va.page_offset(size);
        prop_assert_eq!(rebuilt, raw);
    }

    #[test]
    fn block_alignment_holds(raw in any::<u64>()) {
        let b = PhysAddr::new(raw).block();
        prop_assert_eq!(b.0 % BLOCK_BYTES, 0);
        prop_assert!(b.0 <= raw);
        prop_assert!(raw - b.0 < BLOCK_BYTES);
    }

    #[test]
    fn rng_below_in_range(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut r = Rng64::new(seed);
        for _ in 0..32 {
            prop_assert!(r.below(bound) < bound);
        }
    }

    #[test]
    fn rng_range_inclusive(seed in any::<u64>(), lo in 0u64..1000, span in 0u64..1000) {
        let mut r = Rng64::new(seed);
        let hi = lo + span;
        for _ in 0..16 {
            let v = r.range(lo, hi);
            prop_assert!((lo..=hi).contains(&v));
        }
    }

    #[test]
    fn rng_streams_reproducible(seed in any::<u64>()) {
        let mut a = Rng64::new(seed);
        let mut b = Rng64::new(seed);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn histogram_total_matches_inserts(values in prop::collection::vec(0u64..100_000, 1..100)) {
        let mut h = itpx_types::Histogram::new(20);
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.total(), values.len() as u64);
        prop_assert!(h.percentile(1.0) >= h.percentile(0.0));
    }

    #[test]
    fn geomean_between_min_and_max(xs in prop::collection::vec(-0.5f64..2.0, 1..20)) {
        let g = itpx_types::stats::geomean_speedup(&xs);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(g >= min - 1e-9 && g <= max + 1e-9);
    }
}
