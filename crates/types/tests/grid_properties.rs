//! Pins `SetGrid<T>` against a nested-`Vec` reference model.
//!
//! The policy-metadata migration replaced every `Vec<Vec<T>>` with a
//! `SetGrid<T>`; byte-identical simulation results depend on the two
//! layouts being observationally equivalent. These properties drive both
//! through random geometries and read/write/fill sequences and require
//! every row to agree after every step.

use itpx_types::{SetGrid, SetMask};
use proptest::prelude::*;

/// One step of the access-sequence property.
#[derive(Debug, Clone)]
enum Op {
    Write { set: usize, i: usize, v: u32 },
    Fill { v: u32 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The in-tree proptest shim's `prop_oneof!` is unweighted; bias toward
    // writes by listing the write arm several times.
    prop_oneof![
        (any::<usize>(), any::<usize>(), any::<u32>()).prop_map(|(set, i, v)| Op::Write {
            set,
            i,
            v
        }),
        (any::<usize>(), any::<usize>(), any::<u32>()).prop_map(|(set, i, v)| Op::Write {
            set,
            i,
            v
        }),
        (any::<usize>(), any::<usize>(), any::<u32>()).prop_map(|(set, i, v)| Op::Write {
            set,
            i,
            v
        }),
        any::<u32>().prop_map(|v| Op::Fill { v }),
    ]
}

proptest! {
    #[test]
    fn grid_matches_nested_vec_model(
        sets in 1usize..32,
        width in 1usize..16,
        init in any::<u32>(),
        ops in prop::collection::vec(op_strategy(), 0..64),
    ) {
        let mut grid = SetGrid::new(sets, width, init);
        let mut model: Vec<Vec<u32>> = vec![vec![init; width]; sets];
        prop_assert_eq!(grid.sets(), sets);
        prop_assert_eq!(grid.width(), width);
        for op in ops.clone() {
            match op {
                Op::Write { set, i, v } => {
                    let (set, i) = (set % sets, i % width);
                    grid.row_mut(set)[i] = v;
                    model[set][i] = v;
                }
                Op::Fill { v } => {
                    grid.fill(v);
                    for row in &mut model {
                        row.fill(v);
                    }
                }
            }
            for (set, row) in model.iter().enumerate() {
                prop_assert_eq!(grid.row(set), row.as_slice());
            }
        }
    }

    #[test]
    fn from_row_fn_matches_model(sets in 1usize..32, width in 1usize..16) {
        let grid = SetGrid::from_row_fn(sets, width, |i| i as u16);
        let model: Vec<Vec<u16>> = vec![(0..width as u16).collect(); sets];
        for (set, row) in model.iter().enumerate() {
            prop_assert_eq!(grid.row(set), row.as_slice());
        }
    }

    #[test]
    fn rows_never_alias(sets in 2usize..32, width in 1usize..16, v in any::<u32>()) {
        let mut grid = SetGrid::new(sets, width, 0u32);
        grid.row_mut(0)[width - 1] = v;
        for set in 1..sets {
            prop_assert!(grid.row(set).iter().all(|&x| x == 0));
        }
    }

    #[test]
    fn mask_is_modulo_for_pow2(shift in 0u32..16, key in any::<u64>()) {
        let sets = 1usize << shift;
        let mask = SetMask::new(sets);
        prop_assert_eq!(mask.set_of(key), (key as usize) % sets);
        prop_assert_eq!(mask.sets(), sets);
    }
}
