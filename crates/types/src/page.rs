//! Page sizes.
//!
//! The evaluation uses 4 KiB base pages everywhere and, in Section 6.5, a
//! configurable fraction of the code/data footprint backed by 2 MiB pages.

/// A translation granule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum PageSize {
    /// 4 KiB base page (x86-64 level-1 leaf).
    #[default]
    Base4K,
    /// 2 MiB huge page (x86-64 level-2 leaf).
    Huge2M,
}

impl PageSize {
    /// log2 of the page size in bytes.
    pub const fn shift(self) -> u32 {
        match self {
            PageSize::Base4K => 12,
            PageSize::Huge2M => 21,
        }
    }

    /// Page size in bytes.
    pub const fn bytes(self) -> u64 {
        1 << self.shift()
    }

    /// Number of radix-tree levels a walk must traverse to reach the leaf
    /// PTE for this page size in a 5-level page table (4 KiB leaves live at
    /// level 1, 2 MiB leaves at level 2).
    pub const fn leaf_level(self) -> u8 {
        match self {
            PageSize::Base4K => 1,
            PageSize::Huge2M => 2,
        }
    }
}

impl std::fmt::Display for PageSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PageSize::Base4K => f.write_str("4K"),
            PageSize::Huge2M => f.write_str("2M"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(PageSize::Base4K.bytes(), 4096);
        assert_eq!(PageSize::Huge2M.bytes(), 2 * 1024 * 1024);
    }

    #[test]
    fn leaf_levels() {
        assert_eq!(PageSize::Base4K.leaf_level(), 1);
        assert_eq!(PageSize::Huge2M.leaf_level(), 2);
    }

    #[test]
    fn huge_page_covers_512_base_pages() {
        assert_eq!(PageSize::Huge2M.bytes() / PageSize::Base4K.bytes(), 512);
    }
}
