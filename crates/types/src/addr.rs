//! Strongly-typed addresses.
//!
//! Virtual and physical addresses are distinct newtypes so that a page-table
//! walk result can never be confused with the virtual address that requested
//! it. Cache-block arithmetic lives on [`BlockAddr`].

use crate::page::PageSize;

/// log2 of the cache block size: 64-byte blocks throughout, as in the paper.
pub const BLOCK_SHIFT: u32 = 6;
/// Cache block size in bytes.
pub const BLOCK_BYTES: u64 = 1 << BLOCK_SHIFT;

/// A virtual address in the simulated machine.
///
/// # Examples
///
/// ```
/// use itpx_types::{VirtAddr, PageSize};
/// let va = VirtAddr::new(0xdead_beef);
/// assert_eq!(va.page_offset(PageSize::Base4K), 0xeef);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(pub u64);

/// A physical address in the simulated machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(pub u64);

/// A virtual page number (page-size dependent; produced by
/// [`VirtAddr::vpn`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Vpn(pub u64);

/// A physical cache-block address: a [`PhysAddr`] with the low
/// [`BLOCK_SHIFT`] bits cleared. This is the unit caches operate on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockAddr(pub u64);

impl VirtAddr {
    /// Creates a virtual address.
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// The virtual page number of this address for the given page size.
    pub const fn vpn(self, size: PageSize) -> Vpn {
        Vpn(self.0 >> size.shift())
    }

    /// Offset of this address within its page.
    pub const fn page_offset(self, size: PageSize) -> u64 {
        self.0 & (size.bytes() - 1)
    }

    /// Returns the address advanced by `bytes`.
    #[must_use]
    pub const fn offset(self, bytes: u64) -> Self {
        Self(self.0.wrapping_add(bytes))
    }
}

impl PhysAddr {
    /// Creates a physical address.
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// The cache block containing this address.
    pub const fn block(self) -> BlockAddr {
        BlockAddr(self.0 >> BLOCK_SHIFT << BLOCK_SHIFT)
    }

    /// The physical frame number for the given page size.
    pub const fn pfn(self, size: PageSize) -> u64 {
        self.0 >> size.shift()
    }

    /// Returns the address advanced by `bytes`.
    #[must_use]
    pub const fn offset(self, bytes: u64) -> Self {
        Self(self.0.wrapping_add(bytes))
    }
}

impl BlockAddr {
    /// Creates a block address from a raw physical address, aligning down.
    pub const fn containing(pa: PhysAddr) -> Self {
        pa.block()
    }

    /// The first byte of the block as a full physical address.
    pub const fn base(self) -> PhysAddr {
        PhysAddr(self.0)
    }

    /// Block index (address divided by block size); useful for set hashing.
    pub const fn index(self) -> u64 {
        self.0 >> BLOCK_SHIFT
    }
}

impl Vpn {
    /// Reconstructs the base virtual address of this page.
    pub const fn base(self, size: PageSize) -> VirtAddr {
        VirtAddr(self.0 << size.shift())
    }
}

impl From<u64> for VirtAddr {
    fn from(raw: u64) -> Self {
        Self(raw)
    }
}

impl From<u64> for PhysAddr {
    fn from(raw: u64) -> Self {
        Self(raw)
    }
}

impl std::fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{:#x}", self.0)
    }
}

impl std::fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{:#x}", self.0)
    }
}

impl std::fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b{:#x}", self.0)
    }
}

impl std::fmt::LowerHex for VirtAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::LowerHex::fmt(&self.0, f)
    }
}

impl std::fmt::LowerHex for PhysAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::LowerHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vpn_and_offset_roundtrip_4k() {
        let va = VirtAddr::new(0x1234_5678);
        let vpn = va.vpn(PageSize::Base4K);
        let off = va.page_offset(PageSize::Base4K);
        assert_eq!(vpn.base(PageSize::Base4K).0 + off, va.0);
    }

    #[test]
    fn vpn_and_offset_roundtrip_2m() {
        let va = VirtAddr::new(0x0dea_dbee_f123);
        let vpn = va.vpn(PageSize::Huge2M);
        let off = va.page_offset(PageSize::Huge2M);
        assert_eq!(vpn.base(PageSize::Huge2M).0 + off, va.0);
        assert!(off < PageSize::Huge2M.bytes());
    }

    #[test]
    fn block_alignment() {
        let pa = PhysAddr::new(0x1000 + 63);
        assert_eq!(pa.block().0, 0x1000);
        assert_eq!(pa.block().base().0 % BLOCK_BYTES, 0);
        let pa2 = PhysAddr::new(0x1000 + 64);
        assert_ne!(pa.block(), pa2.block());
    }

    #[test]
    fn block_index_is_dense() {
        assert_eq!(BlockAddr(0).index(), 0);
        assert_eq!(BlockAddr(64).index(), 1);
        assert_eq!(BlockAddr(128).index(), 2);
    }

    #[test]
    fn display_forms() {
        assert_eq!(VirtAddr::new(0x10).to_string(), "v0x10");
        assert_eq!(PhysAddr::new(0x10).to_string(), "p0x10");
    }
}
