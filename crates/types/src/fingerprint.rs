//! Deterministic content fingerprinting for the simulation-result cache.
//!
//! The campaign engine in `itpx-bench` memoizes [`SimulationOutput`]s under
//! a content-addressed key: a hash over everything that determines a run's
//! result (system configuration, policy preset, workload parameters, run
//! lengths). That key must be identical across processes and machine
//! restarts, so it cannot use `std::hash` defaults (`RandomState` seeds
//! differ per process). This module vendors the 64-bit FNV-1a function —
//! a public-domain, dependency-free, stable hash — and a small
//! [`Fingerprint`] trait the configuration types across the workspace
//! implement.
//!
//! Rules for implementors (see DESIGN.md "Campaign engine"):
//!
//! * Hash **every** field that can change simulation output, in a fixed
//!   declaration order. Omitting a field silently aliases cache entries.
//! * Hash floats through [`Fnv1a::write_f64`] (IEEE-754 bit pattern), so
//!   `-0.0` and `0.0` differ and round-trips are exact.
//! * Never hash wall-clock time, host thread counts, or anything else that
//!   does not change the simulated result.
//!
//! `SimulationOutput` is defined in `itpx-cpu`; this module only provides
//! the hashing vocabulary.

/// 64-bit FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// 64-bit FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental 64-bit FNV-1a hasher.
///
/// # Examples
///
/// ```
/// use itpx_types::fingerprint::Fnv1a;
///
/// let mut h = Fnv1a::new();
/// h.write_bytes(b"hello");
/// // The FNV-1a test vector for "hello".
/// assert_eq!(h.finish(), 0xa430_d846_80aa_bd0b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// A hasher at the FNV offset basis.
    pub const fn new() -> Self {
        Self(FNV_OFFSET)
    }

    /// Absorbs raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write_bytes(&[v]);
    }

    /// Absorbs a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs a `usize` widened to 64 bits, so 32- and 64-bit hosts
    /// produce the same key.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorbs a boolean as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(v as u8);
    }

    /// Absorbs an `f64` through its IEEE-754 bit pattern (exact; never
    /// formats or rounds).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorbs a string as a length-prefixed byte sequence (the prefix
    /// prevents `"ab" + "c"` from colliding with `"a" + "bc"`).
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// A type whose simulation-relevant content can be absorbed into a
/// deterministic fingerprint.
pub trait Fingerprint {
    /// Absorbs this value's content into `h`.
    fn fingerprint(&self, h: &mut Fnv1a);

    /// Convenience: the value's standalone 64-bit fingerprint.
    fn fingerprint_u64(&self) -> u64 {
        let mut h = Fnv1a::new();
        self.fingerprint(&mut h);
        h.finish()
    }
}

impl<T: Fingerprint> Fingerprint for &T {
    fn fingerprint(&self, h: &mut Fnv1a) {
        (*self).fingerprint(h);
    }
}

impl<T: Fingerprint> Fingerprint for [T] {
    fn fingerprint(&self, h: &mut Fnv1a) {
        h.write_usize(self.len());
        for item in self {
            item.fingerprint(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fnv1a_vectors() {
        // Reference vectors from the FNV specification (draft-eastlake).
        let cases: [(&[u8], u64); 3] = [
            (b"", 0xcbf2_9ce4_8422_2325),
            (b"a", 0xaf63_dc4c_8601_ec8c),
            (b"foobar", 0x8594_4171_f739_67e8),
        ];
        for (input, expect) in cases {
            let mut h = Fnv1a::new();
            h.write_bytes(input);
            assert_eq!(h.finish(), expect, "input {input:?}");
        }
    }

    #[test]
    fn length_prefix_prevents_concatenation_collisions() {
        let mut a = Fnv1a::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv1a::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn f64_hashing_is_bitwise() {
        let mut a = Fnv1a::new();
        a.write_f64(0.0);
        let mut b = Fnv1a::new();
        b.write_f64(-0.0);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn same_input_same_hash() {
        let write = || {
            let mut h = Fnv1a::new();
            h.write_u64(42);
            h.write_str("srv_001");
            h.write_f64(1.25);
            h.finish()
        };
        assert_eq!(write(), write());
    }

    #[test]
    fn slice_fingerprint_includes_length() {
        struct U(u64);
        impl Fingerprint for U {
            fn fingerprint(&self, h: &mut Fnv1a) {
                h.write_u64(self.0);
            }
        }
        let one = [U(7)].as_slice().fingerprint_u64();
        let two = [U(7), U(7)].as_slice().fingerprint_u64();
        assert_ne!(one, two);
    }
}
