//! Statistics primitives: per-structure access/miss counters with the
//! four-way breakdown the paper reports (Figure 4), online means for miss
//! latencies (Figure 9b), and log-bucket histograms.

use crate::access::FillClass;
use crate::LevelId;

/// A structure that participates in a warmup/measurement boundary: it can
/// clear its *measurement counters* without disturbing its *contents*.
///
/// Every stats-bearing structure on the simulated machine implements this
/// trait, and the engine's boundary reset walks one list of
/// `&mut dyn ResetBoundary` instead of hand-naming counters — so adding a
/// counter to a structure cannot silently escape the boundary, and the
/// tier scheduler resets exactly the same set the flat engine does.
pub trait ResetBoundary {
    /// Zeroes measurement counters; warmed contents stay intact.
    fn reset_boundary(&mut self);
}

impl ResetBoundary for StructStats {
    fn reset_boundary(&mut self) {
        self.reset();
    }
}

/// Streaming mean without storing samples.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineMean {
    count: u64,
    sum: f64,
}

impl OnlineMean {
    /// Creates an empty mean.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    pub fn add(&mut self, sample: f64) {
        self.count += 1;
        self.sum += sample;
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Current mean, or 0.0 if no samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Merges another mean into this one.
    pub fn merge(&mut self, other: &OnlineMean) {
        self.count += other.count;
        self.sum += other.sum;
    }

    /// The raw `(count, sum)` state, for exact serialization.
    pub fn raw_parts(&self) -> (u64, f64) {
        (self.count, self.sum)
    }

    /// Rebuilds a mean from [`raw_parts`](Self::raw_parts) output.
    pub fn from_raw_parts(count: u64, sum: f64) -> Self {
        Self { count, sum }
    }
}

/// Power-of-two bucketed histogram (bucket *i* counts values in
/// `[2^i, 2^(i+1))`, bucket 0 counts 0 and 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram able to hold values up to `2^(buckets) - 1`;
    /// larger values saturate into the last bucket.
    pub fn new(buckets: usize) -> Self {
        Self {
            buckets: vec![0; buckets.max(1)],
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        let b = (64 - value.leading_zeros()).saturating_sub(1) as usize;
        let b = b.min(self.buckets.len() - 1);
        self.buckets[b] += 1;
    }

    /// Bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Approximate percentile (returns the lower bound of the bucket that
    /// contains the `p`-th percentile sample), or 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        let total = self.total();
        if total == 0 {
            return 0;
        }
        let target = (p.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if i == 0 { 0 } else { 1 << i };
            }
        }
        1 << (self.buckets.len() - 1)
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new(24)
    }
}

/// Misses-per-kilo-instruction broken down into the paper's four classes
/// (Figure 4): demand data (`dMPKI`), demand instruction (`iMPKI`), data
/// page-walk (`dtMPKI`), instruction page-walk (`itMPKI`).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MpkiBreakdown {
    /// Demand-data misses per kilo-instruction.
    pub data: f64,
    /// Demand-instruction misses per kilo-instruction.
    pub instr: f64,
    /// Misses from page walks serving data translations.
    pub data_pte: f64,
    /// Misses from page walks serving instruction translations.
    pub instr_pte: f64,
}

impl MpkiBreakdown {
    /// Total MPKI across all classes.
    pub fn total(&self) -> f64 {
        self.data + self.instr + self.data_pte + self.instr_pte
    }
}

impl std::fmt::Display for MpkiBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "d={:.3} i={:.3} dt={:.3} it={:.3} (total {:.3})",
            self.data,
            self.instr,
            self.data_pte,
            self.instr_pte,
            self.total()
        )
    }
}

/// Access/miss/latency counters for one hardware structure (a TLB level or
/// a cache level), broken down by [`FillClass`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StructStats {
    accesses: [u64; 4],
    misses: [u64; 4],
    miss_latency: OnlineMean,
}

impl StructStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an access of the given class; `miss` marks whether it missed.
    pub fn record(&mut self, class: FillClass, miss: bool) {
        let i = class.stat_index();
        self.accesses[i] += 1;
        if miss {
            self.misses[i] += 1;
        }
    }

    /// Records the end-to-end latency of one miss, in cycles.
    // itpx-allow: hot-float statistics sink only; the float mean never feeds back into simulated state
    pub fn record_miss_latency(&mut self, cycles: u64) {
        self.miss_latency.add(cycles as f64);
    }

    /// Total accesses across classes.
    pub fn accesses(&self) -> u64 {
        self.accesses.iter().sum()
    }

    /// Total misses across classes.
    pub fn misses(&self) -> u64 {
        self.misses.iter().sum()
    }

    /// Misses of one class.
    pub fn misses_of(&self, class: FillClass) -> u64 {
        // stat_index() < 4, the counter arrays' fixed length
        self.misses[class.stat_index()]
    }

    /// Accesses of one class.
    pub fn accesses_of(&self, class: FillClass) -> u64 {
        // stat_index() < 4, the counter arrays' fixed length
        self.accesses[class.stat_index()]
    }

    /// Average miss latency in cycles (0 if no misses recorded).
    pub fn avg_miss_latency(&self) -> f64 {
        self.miss_latency.mean()
    }

    /// Total MPKI given the retired instruction count.
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.misses() as f64 * 1000.0 / instructions as f64
        }
    }

    /// Per-class MPKI breakdown given the retired instruction count.
    pub fn mpki_breakdown(&self, instructions: u64) -> MpkiBreakdown {
        if instructions == 0 {
            return MpkiBreakdown::default();
        }
        let k = 1000.0 / instructions as f64;
        MpkiBreakdown {
            data: self.misses_of(FillClass::DataPayload) as f64 * k,
            instr: self.misses_of(FillClass::InstrPayload) as f64 * k,
            data_pte: self.misses_of(FillClass::DataPte) as f64 * k,
            instr_pte: self.misses_of(FillClass::InstrPte) as f64 * k,
        }
    }

    /// Hit rate in `[0, 1]` (1.0 when there are no accesses).
    pub fn hit_rate(&self) -> f64 {
        let a = self.accesses();
        if a == 0 {
            1.0
        } else {
            1.0 - self.misses() as f64 / a as f64
        }
    }

    /// Clears all counters (used at the warmup/measurement boundary).
    pub fn reset(&mut self) {
        *self = StructStats::default();
    }

    /// The raw per-class counter state, for exact serialization:
    /// `(accesses, misses, miss-latency mean)`.
    pub fn raw_parts(&self) -> ([u64; 4], [u64; 4], OnlineMean) {
        (self.accesses, self.misses, self.miss_latency)
    }

    /// Rebuilds counters from [`raw_parts`](Self::raw_parts) output.
    pub fn from_raw_parts(accesses: [u64; 4], misses: [u64; 4], miss_latency: OnlineMean) -> Self {
        Self {
            accesses,
            misses,
            miss_latency,
        }
    }

    /// Merges counters from another structure (used to aggregate SMT runs).
    pub fn merge(&mut self, other: &StructStats) {
        for i in 0..4 {
            self.accesses[i] += other.accesses[i];
            self.misses[i] += other.misses[i];
        }
        self.miss_latency.merge(&other.miss_latency);
    }
}

/// Per-class access and miss counts of one structure: the timing-free
/// projection of [`StructStats`] (no latency mean), used wherever two
/// machines are compared on pure counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StructCounts {
    /// Accesses per [`FillClass`], indexed by `stat_index()`.
    pub accesses: [u64; 4],
    /// Misses per [`FillClass`], same order.
    pub misses: [u64; 4],
}

impl From<&StructStats> for StructCounts {
    fn from(s: &StructStats) -> Self {
        let (accesses, misses, _latency) = s.raw_parts();
        Self { accesses, misses }
    }
}

impl StructCounts {
    /// Records one access, mirroring [`StructStats::record`].
    pub fn record(&mut self, class: FillClass, miss: bool) {
        // stat_index() < 4, the counter arrays' fixed length
        self.accesses[class.stat_index()] += 1;
        if miss {
            // stat_index() < 4, the counter arrays' fixed length
            self.misses[class.stat_index()] += 1;
        }
    }
}

/// Timing-free counts of one cache level of the chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelCounts {
    /// Which level this is.
    pub id: LevelId,
    /// Demand access/miss counts per class.
    pub counts: StructCounts,
    /// Dirty blocks displaced by fills.
    pub writebacks: u64,
    /// Valid blocks displaced by fills (dirty or clean).
    pub evictions: u64,
}

/// Geometric mean of `1 + x` minus 1, the aggregation the paper uses for
/// "geomean IPC improvement" over per-workload speedups.
///
/// Returns 0.0 for an empty slice.
///
/// # Examples
///
/// ```
/// use itpx_types::stats::geomean_speedup;
/// let g = geomean_speedup(&[0.10, 0.10]);
/// assert!((g - 0.10).abs() < 1e-12);
/// ```
pub fn geomean_speedup(improvements: &[f64]) -> f64 {
    if improvements.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = improvements.iter().map(|x| (1.0 + x).ln()).sum();
    (log_sum / improvements.len() as f64).exp() - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_mean_basic() {
        let mut m = OnlineMean::new();
        assert_eq!(m.mean(), 0.0);
        m.add(10.0);
        m.add(20.0);
        assert_eq!(m.mean(), 15.0);
        assert_eq!(m.count(), 2);
    }

    #[test]
    fn online_mean_merge() {
        let mut a = OnlineMean::new();
        a.add(1.0);
        let mut b = OnlineMean::new();
        b.add(3.0);
        a.merge(&b);
        assert_eq!(a.mean(), 2.0);
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::new(8);
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024); // saturates into last bucket (max 2^7 range)
        assert_eq!(h.total(), 5);
        assert_eq!(h.buckets()[0], 2);
        assert_eq!(h.buckets()[1], 2);
        assert_eq!(h.buckets()[7], 1);
    }

    #[test]
    fn histogram_percentile() {
        let mut h = Histogram::new(16);
        for _ in 0..99 {
            h.record(4);
        }
        h.record(4096);
        assert_eq!(h.percentile(0.5), 4);
        assert_eq!(h.percentile(1.0), 4096);
        assert_eq!(Histogram::new(4).percentile(0.5), 0);
    }

    #[test]
    fn struct_stats_mpki() {
        let mut s = StructStats::new();
        for _ in 0..10 {
            s.record(FillClass::DataPayload, true);
        }
        for _ in 0..90 {
            s.record(FillClass::DataPayload, false);
        }
        s.record(FillClass::InstrPte, true);
        assert_eq!(s.accesses(), 101);
        assert_eq!(s.misses(), 11);
        let b = s.mpki_breakdown(1000);
        assert!((b.data - 10.0).abs() < 1e-9);
        assert!((b.instr_pte - 1.0).abs() < 1e-9);
        assert!((s.mpki(1000) - 11.0).abs() < 1e-9);
    }

    #[test]
    fn struct_stats_hit_rate_and_latency() {
        let mut s = StructStats::new();
        assert_eq!(s.hit_rate(), 1.0);
        s.record(FillClass::InstrPayload, true);
        s.record(FillClass::InstrPayload, false);
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
        s.record_miss_latency(100);
        s.record_miss_latency(200);
        assert!((s.avg_miss_latency() - 150.0).abs() < 1e-9);
    }

    #[test]
    fn geomean_speedup_matches_hand_calc() {
        // (1.2 * 0.8)^(1/2) - 1
        let g = geomean_speedup(&[0.2, -0.2]);
        assert!((g - ((1.2f64 * 0.8).sqrt() - 1.0)).abs() < 1e-12);
        assert_eq!(geomean_speedup(&[]), 0.0);
    }
}
