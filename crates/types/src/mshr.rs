//! A fixed-capacity slot pool for lazily-cleaned MSHR models.
//!
//! The cache and TLB miss-status tables track a small set of outstanding
//! misses: entries are inserted at fill/allocate time and expire when the
//! simulated clock passes their completion cycle. The previous
//! implementations used `Vec::retain` (compacting move per expiry) and
//! `BTreeMap` (node allocation per miss) on the hottest simulator paths.
//!
//! [`SlotPool`] replaces both: a boxed-once array of `Option<T>` slots
//! sized to the MSHR capacity. Expiry tombstones a slot in place and
//! insertion reuses the first free slot, so steady-state operation
//! performs no allocation and no element moves. If the lazily-cleaned
//! model transiently overflows its nominal capacity (completions recorded
//! before earlier entries expire), the pool grows once and keeps the
//! larger footprint — still allocation-free afterwards.
//!
//! Slot order is a deterministic function of the insert/expire history, so
//! simulations using it are exactly reproducible; consumers must not
//! derive *decisions* from slot order alone (the cache/TLB users only take
//! order-insensitive views: counts, minima, and key lookups).

/// Fixed-capacity pool of live entries with in-place expiry.
#[derive(Debug, Clone)]
pub struct SlotPool<T> {
    slots: Vec<Option<T>>,
    live: usize,
}

impl<T> SlotPool<T> {
    /// A pool with `capacity` preallocated slots (at least one).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            slots: (0..capacity.max(1)).map(|_| None).collect(),
            live: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` if no entries are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Inserts an entry into the first free slot, growing only if every
    /// slot is occupied.
    pub fn insert(&mut self, value: T) {
        self.live += 1;
        for slot in &mut self.slots {
            if slot.is_none() {
                *slot = Some(value);
                return;
            }
        }
        // itpx-allow: hot-alloc grow-once pool: pushes only until the slot count matches peak occupancy, then reuses tombstoned slots
        self.slots.push(Some(value));
    }

    /// Drops every entry for which `keep` returns `false`, tombstoning its
    /// slot in place (no compaction).
    pub fn retain(&mut self, mut keep: impl FnMut(&T) -> bool) {
        for slot in &mut self.slots {
            if matches!(slot, Some(v) if !keep(v)) {
                *slot = None;
                self.live -= 1;
            }
        }
    }

    /// Iterates live entries in slot order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.slots.iter().flatten()
    }

    /// Iterates live entries mutably in slot order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.slots.iter_mut().flatten()
    }

    /// The first live entry matching `pred`.
    pub fn find(&self, pred: impl FnMut(&&T) -> bool) -> Option<&T> {
        self.iter().find(pred)
    }

    /// Mutable access to the first live entry matching `pred`.
    pub fn find_mut(&mut self, mut pred: impl FnMut(&T) -> bool) -> Option<&mut T> {
        self.iter_mut().find(|v| pred(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_len() {
        let mut p = SlotPool::with_capacity(4);
        assert!(p.is_empty());
        p.insert(10u64);
        p.insert(20);
        assert_eq!(p.len(), 2);
        assert_eq!(p.iter().copied().min(), Some(10));
    }

    #[test]
    fn retain_tombstones_in_place() {
        let mut p = SlotPool::with_capacity(4);
        for v in [5u64, 6, 7] {
            p.insert(v);
        }
        p.retain(|&v| v > 5);
        assert_eq!(p.len(), 2);
        // The freed slot (index 0) is reused before any later slot.
        p.insert(99);
        let seen: Vec<u64> = p.iter().copied().collect();
        assert_eq!(seen, vec![99, 6, 7]);
    }

    #[test]
    fn overflow_grows_once_and_keeps_capacity() {
        let mut p = SlotPool::with_capacity(2);
        for v in 0..5u64 {
            p.insert(v);
        }
        assert_eq!(p.len(), 5);
        p.retain(|&v| v >= 4);
        assert_eq!(p.len(), 1);
        // Reuses freed slots rather than growing further.
        for v in 10..14u64 {
            p.insert(v);
        }
        assert_eq!(p.len(), 5);
        assert_eq!(p.iter().count(), 5);
    }

    #[test]
    fn keyed_lookup_and_update() {
        let mut p: SlotPool<(u64, u64)> = SlotPool::with_capacity(4);
        p.insert((1, 100));
        p.insert((2, 200));
        assert_eq!(p.find(|(k, _)| *k == 2), Some(&(2, 200)));
        if let Some(e) = p.find_mut(|(k, _)| *k == 1) {
            e.1 = 111;
        }
        assert_eq!(p.find(|(k, _)| *k == 1), Some(&(1, 111)));
        assert_eq!(p.find(|(k, _)| *k == 3), None);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut p = SlotPool::with_capacity(0);
        p.insert(1u8);
        assert_eq!(p.len(), 1);
    }
}
