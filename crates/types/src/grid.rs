//! Flat set-associative storage, shared by every per-set structure.
//!
//! PR 6 flattened the `Cache`/`Tlb` tag arrays into single slabs; this
//! module generalizes the idiom so replacement-policy metadata, the page
//! structure caches, and the branch-predictor tables use the same layout
//! instead of `Vec<Vec<T>>`. A [`SetGrid`] owns one `Box<[T]>` indexed
//! `set * width + i`: one pointer chase per access regardless of set
//! count, rows contiguous in memory, and the allocation happens exactly
//! once at construction — which is what lets the allocation witness prove
//! a zero-alloc steady state over the migrated structures.
//!
//! Set selection from an address-like key belongs to the structure that
//! owns the geometry, not to the grid (policies receive an already-chosen
//! set index). [`SetMask`] packages that half: a power-of-two set count
//! validated once at construction and a single `&` per lookup thereafter,
//! replacing per-access `%` division.
//!
//! # Examples
//!
//! ```
//! use itpx_types::{SetGrid, SetMask};
//!
//! let mut rrpv = SetGrid::new(64, 8, 3u8);
//! rrpv.row_mut(5)[2] = 0;
//! assert_eq!(rrpv.row(5)[2], 0);
//!
//! let mask = SetMask::new(64);
//! assert_eq!(mask.set_of(0x1234_5678), 0x38);
//! ```

/// One flat `Box<[T]>` holding `sets` rows of `width` elements each.
///
/// `width` is usually the associativity, but rows of any fixed length are
/// supported (tree-PLRU keeps `ways - 1` node bits per set). Rows are
/// reached through the `#[inline]` slice accessors [`SetGrid::row`] /
/// [`SetGrid::row_mut`]; element access then compiles to a single
/// base-plus-offset load with the usual slice bounds check, with no
/// second pointer indirection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetGrid<T> {
    width: usize,
    data: Box<[T]>,
}

impl<T: Clone> SetGrid<T> {
    /// Creates a grid of `sets` rows of `width` copies of `init`.
    ///
    /// # Panics
    ///
    /// Panics if `sets == 0` or `width == 0`.
    pub fn new(sets: usize, width: usize, init: T) -> Self {
        assert!(sets > 0 && width > 0, "SetGrid needs sets > 0, width > 0");
        Self {
            width,
            data: vec![init; sets * width].into_boxed_slice(),
        }
    }

    /// Overwrites every element with `value` (bulk reset; allocates
    /// nothing).
    pub fn fill(&mut self, value: T) {
        self.data.fill(value);
    }
}

impl<T> SetGrid<T> {
    /// Creates a grid where element `i` of every row is `f(i)` — the
    /// constructor for position-seeded rows such as an initial recency
    /// order `0, 1, …, width - 1`.
    ///
    /// # Panics
    ///
    /// Panics if `sets == 0` or `width == 0`.
    pub fn from_row_fn(sets: usize, width: usize, mut f: impl FnMut(usize) -> T) -> Self {
        assert!(sets > 0 && width > 0, "SetGrid needs sets > 0, width > 0");
        let mut data = Vec::with_capacity(sets * width);
        for _ in 0..sets {
            for i in 0..width {
                data.push(f(i));
            }
        }
        Self {
            width,
            data: data.into_boxed_slice(),
        }
    }

    /// Number of rows (sets).
    #[inline]
    pub fn sets(&self) -> usize {
        self.data.len() / self.width
    }

    /// Row length — the associativity for way-indexed grids.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// The row for `set`, as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `set >= self.sets()`.
    #[inline]
    pub fn row(&self, set: usize) -> &[T] {
        let start = set * self.width;
        &self.data[start..start + self.width]
    }

    /// The row for `set`, as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `set >= self.sets()`.
    #[inline]
    pub fn row_mut(&mut self, set: usize) -> &mut [T] {
        let start = set * self.width;
        &mut self.data[start..start + self.width]
    }
}

/// Power-of-two set selection: validate the geometry once, mask per
/// access.
///
/// `key % sets` and `key & (sets - 1)` agree exactly when `sets` is a
/// power of two; the constructor asserts that invariant so every later
/// [`SetMask::set_of`] is a single AND instead of a division on the
/// per-access path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SetMask {
    mask: usize,
}

impl SetMask {
    /// Builds the mask for a structure with `sets` sets.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is zero or not a power of two.
    pub fn new(sets: usize) -> Self {
        assert!(
            sets.is_power_of_two(),
            "set count must be a power of two for mask indexing, got {sets}"
        );
        Self { mask: sets - 1 }
    }

    /// The set index for an address-like key (low bits, masked).
    #[inline]
    pub fn set_of(&self, key: u64) -> usize {
        (key as usize) & self.mask
    }

    /// The set count this mask selects over.
    #[inline]
    pub fn sets(&self) -> usize {
        self.mask + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_independent() {
        let mut g = SetGrid::new(4, 3, 0u8);
        g.row_mut(2)[1] = 9;
        assert_eq!(g.row(2), &[0, 9, 0]);
        assert_eq!(g.row(1), &[0, 0, 0]);
        assert_eq!(g.row(3), &[0, 0, 0]);
    }

    #[test]
    fn geometry_accessors() {
        let g = SetGrid::new(8, 5, false);
        assert_eq!(g.sets(), 8);
        assert_eq!(g.width(), 5);
        assert_eq!(g.row(7).len(), 5);
    }

    #[test]
    fn from_row_fn_seeds_every_row() {
        let g = SetGrid::from_row_fn(3, 4, |i| i as u16);
        for set in 0..3 {
            assert_eq!(g.row(set), &[0, 1, 2, 3]);
        }
    }

    #[test]
    fn fill_resets_everything() {
        let mut g = SetGrid::new(2, 2, 1u32);
        g.row_mut(0)[0] = 7;
        g.fill(3);
        assert_eq!(g.row(0), &[3, 3]);
        assert_eq!(g.row(1), &[3, 3]);
    }

    #[test]
    #[should_panic(expected = "sets > 0")]
    fn zero_sets_panics() {
        let _ = SetGrid::new(0, 4, 0u8);
    }

    #[test]
    #[should_panic(expected = "width > 0")]
    fn zero_width_panics() {
        let _ = SetGrid::new(4, 0, 0u8);
    }

    #[test]
    fn mask_agrees_with_modulo() {
        for sets in [1usize, 2, 4, 64, 128] {
            let m = SetMask::new(sets);
            assert_eq!(m.sets(), sets);
            for key in [0u64, 1, 63, 64, 12345, u64::MAX] {
                assert_eq!(m.set_of(key), (key as usize) % sets);
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_mask_panics() {
        let _ = SetMask::new(12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn zero_sets_mask_panics() {
        let _ = SetMask::new(0);
    }
}
