//! Classification of memory traffic.
//!
//! The paper's policies hinge on two orthogonal distinctions:
//!
//! 1. **Instruction vs data** — iTP keeps *instruction* translations in the
//!    STLB ([`TranslationKind`]).
//! 2. **Payload vs page-table entry** — xPTP protects L2C blocks holding
//!    *data PTEs* ([`FillClass`]).

/// What a core-side memory access is doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Instruction fetch from the front end.
    InstrFetch,
    /// Data load.
    Load,
    /// Data store.
    Store,
}

impl AccessKind {
    /// `true` for instruction fetches.
    pub const fn is_instruction(self) -> bool {
        matches!(self, AccessKind::InstrFetch)
    }

    /// `true` for loads and stores.
    pub const fn is_data(self) -> bool {
        !self.is_instruction()
    }

    /// The kind of translation this access requires.
    pub const fn translation_kind(self) -> TranslationKind {
        match self {
            AccessKind::InstrFetch => TranslationKind::Instruction,
            AccessKind::Load | AccessKind::Store => TranslationKind::Data,
        }
    }
}

/// Whether a virtual-to-physical translation serves instruction fetches or
/// data accesses.
///
/// This is the `Type` bit the paper adds to each STLB entry and STLB MSHR
/// entry (Type = 0 for instruction translations, 1 for data translations;
/// see Figure 7). The enum is more legible than a raw bit but encodes to the
/// same single bit via [`TranslationKind::type_bit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TranslationKind {
    /// Translation of an instruction-fetch address.
    Instruction,
    /// Translation of a load/store address.
    Data,
}

impl TranslationKind {
    /// The hardware encoding used in the paper: 0 = instruction, 1 = data.
    pub const fn type_bit(self) -> u8 {
        match self {
            TranslationKind::Instruction => 0,
            TranslationKind::Data => 1,
        }
    }

    /// Decodes the hardware `Type` bit.
    pub const fn from_type_bit(bit: u8) -> Self {
        if bit == 0 {
            TranslationKind::Instruction
        } else {
            TranslationKind::Data
        }
    }

    /// `true` if this is an instruction translation.
    pub const fn is_instruction(self) -> bool {
        matches!(self, TranslationKind::Instruction)
    }
}

/// What payload a cache block carries, as observed at fill time.
///
/// Demand/prefetch instruction and data payloads are distinguished from
/// blocks holding page-table entries, and PTE blocks are further split by
/// the translation kind of the page walk that fetched them — the distinction
/// prior translation-aware policies (PTP, T-DRRIP) lack and xPTP exploits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FillClass {
    /// Block holding instructions, brought in by a fetch or an L1I prefetch.
    InstrPayload,
    /// Block holding program data, brought in by a load/store or prefetch.
    DataPayload,
    /// Block holding page-table entries fetched by a page walk that served
    /// an **instruction** STLB miss.
    InstrPte,
    /// Block holding page-table entries fetched by a page walk that served
    /// a **data** STLB miss.
    DataPte,
}

impl FillClass {
    /// `true` if the block holds page-table entries (either kind).
    pub const fn is_pte(self) -> bool {
        matches!(self, FillClass::InstrPte | FillClass::DataPte)
    }

    /// `true` if the block holds page-table entries for data translations —
    /// the class xPTP protects.
    pub const fn is_data_pte(self) -> bool {
        matches!(self, FillClass::DataPte)
    }

    /// The fill class of a page-walk reference serving `kind` translations.
    pub const fn pte_for(kind: TranslationKind) -> Self {
        match kind {
            TranslationKind::Instruction => FillClass::InstrPte,
            TranslationKind::Data => FillClass::DataPte,
        }
    }

    /// The fill class of a demand access of `kind`.
    pub const fn payload_for(kind: AccessKind) -> Self {
        match kind {
            AccessKind::InstrFetch => FillClass::InstrPayload,
            AccessKind::Load | AccessKind::Store => FillClass::DataPayload,
        }
    }

    /// Index 0..4 used by the per-class MPKI breakdown counters.
    pub const fn stat_index(self) -> usize {
        match self {
            FillClass::DataPayload => 0,
            FillClass::InstrPayload => 1,
            FillClass::DataPte => 2,
            FillClass::InstrPte => 3,
        }
    }
}

impl std::fmt::Display for FillClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FillClass::InstrPayload => "instr",
            FillClass::DataPayload => "data",
            FillClass::InstrPte => "instr-pte",
            FillClass::DataPte => "data-pte",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_bit_encoding_matches_paper() {
        // Figure 7: Type = 0 for instruction, 1 for data.
        assert_eq!(TranslationKind::Instruction.type_bit(), 0);
        assert_eq!(TranslationKind::Data.type_bit(), 1);
        for k in [TranslationKind::Instruction, TranslationKind::Data] {
            assert_eq!(TranslationKind::from_type_bit(k.type_bit()), k);
        }
    }

    #[test]
    fn access_to_translation_kind() {
        assert_eq!(
            AccessKind::InstrFetch.translation_kind(),
            TranslationKind::Instruction
        );
        assert_eq!(AccessKind::Load.translation_kind(), TranslationKind::Data);
        assert_eq!(AccessKind::Store.translation_kind(), TranslationKind::Data);
    }

    #[test]
    fn fill_class_predicates() {
        assert!(FillClass::DataPte.is_pte());
        assert!(FillClass::InstrPte.is_pte());
        assert!(!FillClass::DataPayload.is_pte());
        assert!(FillClass::DataPte.is_data_pte());
        assert!(!FillClass::InstrPte.is_data_pte());
    }

    #[test]
    fn stat_indices_are_distinct() {
        let mut seen = [false; 4];
        for c in [
            FillClass::DataPayload,
            FillClass::InstrPayload,
            FillClass::DataPte,
            FillClass::InstrPte,
        ] {
            let i = c.stat_index();
            assert!(!seen[i]);
            seen[i] = true;
        }
    }
}
