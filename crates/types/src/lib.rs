//! Shared primitive types for the `itpx` simulator family.
//!
//! This crate defines the vocabulary used across every other `itpx` crate:
//!
//! * [`addr`] — strongly-typed virtual/physical addresses and cache-block
//!   arithmetic ([`VirtAddr`], [`PhysAddr`], [`BlockAddr`]).
//! * [`access`] — classification of memory traffic ([`AccessKind`],
//!   [`TranslationKind`], [`FillClass`]): the distinctions the paper's
//!   policies key on (instruction vs data, payload vs page-table entry).
//! * [`page`] — page sizes and virtual-page-number arithmetic for the
//!   4 KiB / 2 MiB pages used in the evaluation.
//! * [`rng`] — a small deterministic PRNG so every simulation is exactly
//!   reproducible from a seed.
//! * [`stats`] — counters, online means, and histograms used for MPKI and
//!   miss-latency reporting.
//!
//! # Examples
//!
//! ```
//! use itpx_types::{VirtAddr, PageSize, AccessKind};
//!
//! let va = VirtAddr::new(0x7f12_3456_789a);
//! assert_eq!(va.vpn(PageSize::Base4K).0, 0x7f12_3456_789a >> 12);
//! assert!(AccessKind::InstrFetch.is_instruction());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod access;
pub mod addr;
pub mod fingerprint;
pub mod mshr;
pub mod page;
pub mod rng;
pub mod stats;

pub use access::{AccessKind, FillClass, TranslationKind};
pub use addr::{BlockAddr, PhysAddr, VirtAddr, Vpn, BLOCK_BYTES, BLOCK_SHIFT};
pub use fingerprint::{Fingerprint, Fnv1a};
pub use mshr::SlotPool;
pub use page::PageSize;
pub use rng::Rng64;
pub use stats::{Histogram, MpkiBreakdown, OnlineMean, StructStats};

/// Identifier of a hardware thread (SMT context) within a simulated core.
///
/// The simulator supports one or two hardware threads; `ThreadId(0)` always
/// exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ThreadId(pub u8);

impl std::fmt::Display for ThreadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// A simulation timestamp in core clock cycles.
pub type Cycle = u64;
