//! Shared primitive types for the `itpx` simulator family.
//!
//! This crate defines the vocabulary used across every other `itpx` crate:
//!
//! * [`addr`] — strongly-typed virtual/physical addresses and cache-block
//!   arithmetic ([`VirtAddr`], [`PhysAddr`], [`BlockAddr`]).
//! * [`access`] — classification of memory traffic ([`AccessKind`],
//!   [`TranslationKind`], [`FillClass`]): the distinctions the paper's
//!   policies key on (instruction vs data, payload vs page-table entry).
//! * [`grid`] — flat set-associative storage ([`SetGrid`]) and
//!   power-of-two mask set selection ([`SetMask`]), the shared data
//!   layout for tag arrays, policy metadata, and predictor tables.
//! * [`page`] — page sizes and virtual-page-number arithmetic for the
//!   4 KiB / 2 MiB pages used in the evaluation.
//! * [`rng`] — a small deterministic PRNG so every simulation is exactly
//!   reproducible from a seed.
//! * [`stats`] — counters, online means, and histograms used for MPKI and
//!   miss-latency reporting.
//!
//! # Examples
//!
//! ```
//! use itpx_types::{VirtAddr, PageSize, AccessKind};
//!
//! let va = VirtAddr::new(0x7f12_3456_789a);
//! assert_eq!(va.vpn(PageSize::Base4K).0, 0x7f12_3456_789a >> 12);
//! assert!(AccessKind::InstrFetch.is_instruction());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod access;
pub mod addr;
pub mod fingerprint;
pub mod grid;
pub mod mshr;
pub mod page;
pub mod rng;
pub mod stats;

pub use access::{AccessKind, FillClass, TranslationKind};
pub use addr::{BlockAddr, PhysAddr, VirtAddr, Vpn, BLOCK_BYTES, BLOCK_SHIFT};
pub use fingerprint::{Fingerprint, Fnv1a};
pub use grid::{SetGrid, SetMask};
pub use mshr::SlotPool;
pub use page::PageSize;
pub use rng::Rng64;
pub use stats::{
    Histogram, LevelCounts, MpkiBreakdown, OnlineMean, ResetBoundary, StructCounts, StructStats,
};

/// Identifier of a hardware thread (SMT context) within a simulated core.
///
/// The simulator supports one or two hardware threads; `ThreadId(0)` always
/// exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ThreadId(pub u8);

/// Address-space identifier tagging translation-structure entries.
///
/// Multi-tenant scenarios run several address spaces on one core; TLB and
/// page-structure-cache entries carry the ASID they were installed under
/// and only hit when it matches the structure's current ASID. The
/// reserved value [`Asid::GLOBAL`] marks global mappings (kernel-style
/// shared pages) that hit under every address space and survive
/// flush-by-ASID context switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Asid(pub u16);

impl Asid {
    /// The ASID every single-tenant simulation runs under.
    pub const KERNEL: Asid = Asid(0);

    /// Sentinel tag for global mappings: matches any current ASID and is
    /// exempt from flush-by-ASID invalidation.
    pub const GLOBAL: Asid = Asid(u16::MAX);

    /// Whether an entry tagged with `self` hits under `current`.
    #[inline]
    pub fn matches(self, current: Asid) -> bool {
        self == current || self == Asid::GLOBAL
    }
}

impl std::fmt::Display for Asid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if *self == Asid::GLOBAL {
            f.write_str("ASID(global)")
        } else {
            write!(f, "ASID({})", self.0)
        }
    }
}

impl Fingerprint for Asid {
    fn fingerprint(&self, h: &mut Fnv1a) {
        h.write_u64(u64::from(self.0));
    }
}

/// Names one level of the composable cache chain.
///
/// The chain is ordered `L1I, L1D, L2C, [L3,] [LLC]`: both L1s front the
/// first shared level, `L3` exists only in 4-level configurations, and
/// the chain may stop at the L2C (a "no-LLC" 2-level hierarchy). Each
/// access class has a declarative entry level — instruction fetches enter
/// at the L1I, data accesses at the L1D, and page-walk PTE references at
/// the L2C (the paper's Figure 7) — see [`LevelId::entry_for`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LevelId {
    /// L1 instruction cache.
    L1I,
    /// L1 data cache.
    L1D,
    /// First shared level — where xPTP operates and page walks enter.
    L2C,
    /// Intermediate shared level of 4-level chains.
    L3,
    /// Last-level cache.
    Llc,
}

impl LevelId {
    /// Stable display name matching the paper's structure names.
    pub fn name(self) -> &'static str {
        match self {
            LevelId::L1I => "L1I",
            LevelId::L1D => "L1D",
            LevelId::L2C => "L2C",
            LevelId::L3 => "L3",
            LevelId::Llc => "LLC",
        }
    }

    /// Stable serialization code (used by the simcache on-disk format).
    pub fn code(self) -> u8 {
        match self {
            LevelId::L1I => 0,
            LevelId::L1D => 1,
            LevelId::L2C => 2,
            LevelId::L3 => 3,
            LevelId::Llc => 4,
        }
    }

    /// Inverse of [`LevelId::code`].
    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => LevelId::L1I,
            1 => LevelId::L1D,
            2 => LevelId::L2C,
            3 => LevelId::L3,
            4 => LevelId::Llc,
            _ => return None,
        })
    }

    /// Whether this is a per-class private L1 in front of the shared chain.
    pub fn is_private(self) -> bool {
        matches!(self, LevelId::L1I | LevelId::L1D)
    }

    /// The level at which traffic of class `fill` enters the chain:
    /// instruction payload at the L1I, data payload at the L1D, and PTE
    /// references at the L2C.
    pub fn entry_for(fill: FillClass) -> Self {
        match fill {
            FillClass::InstrPayload => LevelId::L1I,
            FillClass::DataPayload => LevelId::L1D,
            FillClass::InstrPte | FillClass::DataPte => LevelId::L2C,
        }
    }
}

impl std::fmt::Display for LevelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl Fingerprint for LevelId {
    fn fingerprint(&self, h: &mut Fnv1a) {
        h.write_u8(self.code());
    }
}

impl std::fmt::Display for ThreadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// A simulation timestamp in core clock cycles.
pub type Cycle = u64;
