//! Deterministic pseudo-random number generation.
//!
//! Every stochastic choice in the simulator (workload synthesis, the
//! probabilistic motivation policy of Figure 3, random replacement) draws
//! from [`Rng64`], a xoshiro256++ generator seeded explicitly, so any run is
//! reproducible from its seed alone.

/// A small, fast, deterministic PRNG (xoshiro256++ seeded via SplitMix64).
///
/// # Examples
///
/// ```
/// use itpx_types::Rng64;
/// let mut a = Rng64::new(42);
/// let mut b = Rng64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Creates a generator from a seed. Any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 to spread the seed into the full state.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "Rng64::below requires a non-zero bound");
        // Lemire-style widening multiply; bias is negligible for simulation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    // itpx-allow: hot-float deterministic 53-bit mantissa conversion of a seeded integer stream; bit-exact on every IEEE-754 target
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "Rng64::range requires lo <= hi");
        lo + self.below(hi - lo + 1)
    }

    /// Derives an independent generator (for splitting streams per
    /// component without correlating them).
    pub fn fork(&mut self) -> Self {
        Self::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = Rng64::new(7);
        let mut b = Rng64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Rng64::new(3);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
        // bound 1 always yields 0
        assert_eq!(r.below(1), 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng64::new(9);
        for _ in 0..1000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = Rng64::new(11);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2500..3500).contains(&hits), "hits={hits}");
    }

    #[test]
    fn range_inclusive() {
        let mut r = Rng64::new(5);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..2000 {
            let v = r.range(4, 6);
            assert!((4..=6).contains(&v));
            saw_lo |= v == 4;
            saw_hi |= v == 6;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn fork_produces_distinct_stream() {
        let mut a = Rng64::new(42);
        let mut b = a.fork();
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }
}
