//! Microarchitectural scaling sanity: making a resource bigger/faster
//! must help (or at least not hurt), and crippling it must hurt. These
//! pin down the engine's structural modeling.

use itpx::prelude::*;

const INSTR: u64 = 80_000;
const WARMUP: u64 = 20_000;

fn w(seed: u64) -> WorkloadSpec {
    WorkloadSpec::server_like(seed)
        .instructions(INSTR)
        .warmup(WARMUP)
}

fn ipc(cfg: &SystemConfig, seed: u64) -> f64 {
    Simulation::single_thread(cfg, Preset::Lru, &w(seed))
        .run()
        .ipc()
}

#[test]
fn tiny_rob_throttles_the_backend() {
    let base = SystemConfig::asplos25();
    let mut tiny = base;
    tiny.rob_entries = 16;
    assert!(
        ipc(&tiny, 1) < ipc(&base, 1) * 0.97,
        "a 16-entry ROB must hurt: {} vs {}",
        ipc(&tiny, 1),
        ipc(&base, 1)
    );
}

#[test]
fn narrow_fetch_throttles_the_frontend() {
    let base = SystemConfig::asplos25();
    let mut narrow = base;
    narrow.fetch_width = 1;
    narrow.retire_width = 1;
    assert!(
        ipc(&narrow, 2) < ipc(&base, 2),
        "1-wide fetch/retire must hurt"
    );
    // And IPC can never exceed the width.
    let out = Simulation::single_thread(&narrow, Preset::Lru, &w(2)).run();
    assert!(out.ipc() <= 1.0);
}

#[test]
fn slower_dram_hurts() {
    let base = SystemConfig::asplos25();
    let mut slow = base;
    slow.hierarchy.dram.latency = 400;
    assert!(ipc(&slow, 3) < ipc(&base, 3));
}

#[test]
fn bigger_llc_does_not_hurt() {
    let base = SystemConfig::asplos25();
    let mut big = base;
    big.hierarchy.llc_mut().expect("asplos25 has an LLC").sets *= 4; // 8 MiB LLC
    assert!(
        ipc(&big, 4) >= ipc(&base, 4) * 0.995,
        "quadrupling the LLC should not hurt: {} vs {}",
        ipc(&big, 4),
        ipc(&base, 4)
    );
}

#[test]
fn fdip_depth_zero_exposes_l1i_misses() {
    let base = SystemConfig::asplos25();
    let mut nofdip = base;
    nofdip.fdip_depth = 0;
    let with = Simulation::single_thread(&base, Preset::Lru, &w(5)).run();
    let without = Simulation::single_thread(&nofdip, Preset::Lru, &w(5)).run();
    assert!(
        without.l1i.misses() > with.l1i.misses() * 2,
        "disabling FDIP must expose demand L1I misses: {} vs {}",
        without.l1i.misses(),
        with.l1i.misses()
    );
    assert!(without.ipc() <= with.ipc() * 1.005);
}

#[test]
fn more_walker_concurrency_does_not_hurt() {
    let base = SystemConfig::asplos25();
    let mut serial = base;
    serial.walker_concurrency = 1;
    let fast = Simulation::single_thread(&base, Preset::Lru, &w(6)).run();
    let slow = Simulation::single_thread(&serial, Preset::Lru, &w(6)).run();
    assert!(
        slow.walker.avg_latency >= fast.walker.avg_latency * 0.98,
        "a single walk register cannot give lower walk latency: {} vs {}",
        slow.walker.avg_latency,
        fast.walker.avg_latency
    );
    assert!(slow.ipc() <= fast.ipc() * 1.005);
}
