//! Integration tests for the Section 3 motivation findings.

use itpx::prelude::*;

const INSTR: u64 = 120_000;
const WARMUP: u64 = 30_000;

fn run(cfg: &SystemConfig, preset: Preset, w: &WorkloadSpec) -> itpx_cpu::SimulationOutput {
    Simulation::single_thread(cfg, preset, w).run()
}

#[test]
fn finding1_big_code_amplifies_translation_overheads() {
    // Figure 1/2: server workloads pay real instruction-translation cost;
    // SPEC-like workloads pay none.
    let cfg = SystemConfig::asplos25();
    let server = WorkloadSpec::server_like(1)
        .instructions(INSTR)
        .warmup(WARMUP);
    let spec = WorkloadSpec::spec_like(1)
        .instructions(INSTR)
        .warmup(WARMUP);
    let s = run(&cfg, Preset::Lru, &server);
    let p = run(&cfg, Preset::Lru, &spec);
    assert!(
        s.itrans_stall_fraction() > 0.04,
        "server itrans too low: {:.3}",
        s.itrans_stall_fraction()
    );
    assert!(
        p.itrans_stall_fraction() < 0.005,
        "spec itrans too high: {:.4}",
        p.itrans_stall_fraction()
    );
    assert!(s.stlb_breakdown().instr > 1.0);
    assert!(p.stlb_breakdown().instr < 0.05);
}

#[test]
fn bigger_itlbs_reduce_instruction_translation_cost() {
    let base = SystemConfig::asplos25();
    let w = WorkloadSpec::server_like(3)
        .instructions(INSTR)
        .warmup(WARMUP);
    let small = run(&base.with_itlb_entries(64), Preset::Lru, &w);
    let large = run(&base.with_itlb_entries(1024), Preset::Lru, &w);
    assert!(
        large.itrans_stall_fraction() < small.itrans_stall_fraction(),
        "1024-entry ITLB should reduce stalls: {:.3} vs {:.3}",
        large.itrans_stall_fraction(),
        small.itrans_stall_fraction()
    );
}

#[test]
fn finding3_keeping_instructions_raises_data_walk_cache_pressure() {
    // Figure 4: an instruction-prioritizing STLB raises dtMPKI at the L2C.
    use itpx_core::presets::PolicyBundle;
    use itpx_policy::{Lru, ProbKeepInstrLru};
    let cfg = SystemConfig::asplos25();
    let w = WorkloadSpec::server_like(4)
        .instructions(INSTR)
        .warmup(WARMUP);
    let d = cfg.dims();
    let bundle = PolicyBundle {
        stlb: ProbKeepInstrLru::new(d.stlb.0, d.stlb.1, 0.8, 9).into(),
        l2c: Lru::new(d.l2c.0, d.l2c.1).into(),
        llc: Lru::new(d.llc.0, d.llc.1).into(),
        monitor: None,
    };
    let base = run(&cfg, Preset::Lru, &w);
    let keep = Simulation::custom(&cfg, bundle, "keep", std::slice::from_ref(&w)).run();
    // Data STLB misses (and hence data page walks) must not decrease.
    assert!(
        keep.stlb_breakdown().data >= base.stlb_breakdown().data * 0.98,
        "keep-instructions should not reduce data walks: {} vs {}",
        keep.stlb_breakdown().data,
        base.stlb_breakdown().data
    );
}

#[test]
fn huge_pages_remove_the_bottleneck() {
    // Figure 13 boundary case: with 100% 2 MiB pages, walks almost vanish
    // and the policies converge.
    let cfg = SystemConfig::asplos25().with_huge_pages(itpx_vm::HugePagePolicy::uniform(1.0, 3));
    let w = WorkloadSpec::server_like(6)
        .instructions(INSTR)
        .warmup(WARMUP);
    let base = run(&cfg, Preset::Lru, &w);
    let coop = run(&cfg, Preset::ItpXptp, &w);
    assert!(
        base.stlb_mpki() < 0.5,
        "2MB-only STLB MPKI should be tiny: {}",
        base.stlb_mpki()
    );
    assert!(
        coop.speedup_pct_over(&base).abs() < 1.5,
        "policies should converge at 100% huge pages: {:+.2}%",
        coop.speedup_pct_over(&base)
    );
}

#[test]
fn split_stlb_changes_the_sharing_story() {
    // Figure 14: a same-capacity split STLB is a different design point;
    // both halves must actually serve their kind.
    let cfg = SystemConfig::asplos25().with_split_stlb(true);
    let w = WorkloadSpec::server_like(8)
        .instructions(INSTR)
        .warmup(WARMUP);
    let out = run(&cfg, Preset::Lru, &w);
    // Aggregated stats must include both instruction and data traffic.
    let b = out.stlb_breakdown();
    assert!(b.instr > 0.0 && b.data > 0.0);
}
