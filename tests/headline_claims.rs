//! Integration tests asserting the paper's headline claims hold on the
//! reduced-scale suites (directional, not absolute — see EXPERIMENTS.md).

use itpx::prelude::*;
use itpx_trace::suites::{qualcomm_like_suite, smt_suite};
use itpx_types::stats::geomean_speedup;

// The cooperative effects need room to develop: the code ring cycles its
// footprint every ~150k instructions and xPTP's protection pays off across
// PTE reuse intervals of similar scale, so headline assertions run longer
// than the other integration tests.
const INSTR: u64 = 500_000;
const WARMUP: u64 = 150_000;

fn suite(n: usize) -> Vec<WorkloadSpec> {
    qualcomm_like_suite(n)
        .into_iter()
        .map(|w| w.instructions(INSTR).warmup(WARMUP))
        .collect()
}

fn geomean_uplift(outs: &[(f64, f64)]) -> f64 {
    geomean_speedup(&outs.iter().map(|(p, b)| p / b - 1.0).collect::<Vec<_>>()) * 100.0
}

#[test]
fn itp_xptp_beats_lru_on_every_server_workload() {
    let cfg = SystemConfig::asplos25();
    for w in suite(4) {
        let base = Simulation::single_thread(&cfg, Preset::Lru, &w).run();
        let coop = Simulation::single_thread(&cfg, Preset::ItpXptp, &w).run();
        assert!(
            coop.ipc() > base.ipc(),
            "{}: coop {:.4} <= lru {:.4}",
            w.name,
            coop.ipc(),
            base.ipc()
        );
    }
}

#[test]
fn headline_ordering_holds() {
    // Paper Figure 8a: iTP+xPTP > TDRRIP > iTP > CHiRP ~ LRU (geomean).
    let cfg = SystemConfig::asplos25();
    let ws = suite(3);
    let run = |preset: Preset| -> Vec<f64> {
        ws.iter()
            .map(|w| Simulation::single_thread(&cfg, preset, w).run().ipc())
            .collect()
    };
    let base = run(Preset::Lru);
    let up = |preset: Preset| -> f64 {
        let outs = run(preset);
        geomean_uplift(
            &outs
                .into_iter()
                .zip(base.iter().copied())
                .collect::<Vec<_>>(),
        )
    };
    let coop = up(Preset::ItpXptp);
    let tdrrip = up(Preset::Tdrrip);
    let itp = up(Preset::Itp);
    let chirp = up(Preset::Chirp);
    assert!(coop > tdrrip, "coop {coop:.2} <= tdrrip {tdrrip:.2}");
    assert!(coop > itp, "coop {coop:.2} <= itp {itp:.2}");
    assert!(itp > -0.5, "iTP should not lose materially: {itp:.2}");
    assert!(chirp.abs() < 3.0, "CHiRP should track LRU: {chirp:.2}");
}

#[test]
fn cooperative_mechanism_signatures() {
    // Figure 10: iTP cuts instruction MPKI and raises data MPKI.
    // Section 6.2: +xPTP slashes L2C data-PTE misses and STLB miss latency.
    let cfg = SystemConfig::asplos25();
    let w = WorkloadSpec::server_like(2)
        .instructions(INSTR)
        .warmup(WARMUP);
    let base = Simulation::single_thread(&cfg, Preset::Lru, &w).run();
    let itp = Simulation::single_thread(&cfg, Preset::Itp, &w).run();
    let coop = Simulation::single_thread(&cfg, Preset::ItpXptp, &w).run();

    let b0 = base.stlb_breakdown();
    let b1 = itp.stlb_breakdown();
    assert!(
        b1.instr < b0.instr * 0.7,
        "iTP must cut instruction STLB MPKI: {} -> {}",
        b0.instr,
        b1.instr
    );
    // "Data translation MPKI suffers an increase" — on average; a single
    // workload may be near-flat, so allow slight noise downward.
    assert!(
        b1.data >= b0.data * 0.97,
        "iTP must not reduce data misses: {} -> {}",
        b0.data,
        b1.data
    );
    assert!(
        coop.l2c_breakdown().data_pte < base.l2c_breakdown().data_pte * 0.6,
        "xPTP must cut L2C data-PTE misses: {} -> {}",
        base.l2c_breakdown().data_pte,
        coop.l2c_breakdown().data_pte
    );
    assert!(
        coop.stlb.avg_miss_latency() < itp.stlb.avg_miss_latency(),
        "xPTP must cut STLB miss latency vs iTP alone"
    );
}

#[test]
fn smt_colocation_gains() {
    // Paper Figure 8b: iTP+xPTP delivers gains under SMT too.
    let cfg = SystemConfig::asplos25();
    let mut pair = smt_suite(1).remove(0);
    pair.a = pair.a.instructions(INSTR).warmup(WARMUP);
    pair.b = pair.b.instructions(INSTR).warmup(WARMUP);
    let base = Simulation::smt(&cfg, Preset::Lru, &pair).run();
    let coop = Simulation::smt(&cfg, Preset::ItpXptp, &pair).run();
    assert!(
        coop.speedup_pct_over(&base) > 1.0,
        "SMT uplift too small: {:.2}%",
        coop.speedup_pct_over(&base)
    );
}

#[test]
fn adaptive_monitor_stays_engaged_under_pressure() {
    let cfg = SystemConfig::asplos25();
    let w = WorkloadSpec::server_like(5)
        .instructions(INSTR)
        .warmup(WARMUP);
    let coop = Simulation::single_thread(&cfg, Preset::ItpXptp, &w).run();
    let f = coop.xptp_enabled_fraction.expect("monitor present");
    assert!(f > 0.8, "server pressure should keep xPTP on: {f:.2}");
}

#[test]
fn spec_like_workloads_are_not_harmed() {
    // The adaptive switch exists so low-pressure phases are not hurt.
    let cfg = SystemConfig::asplos25();
    let w = WorkloadSpec::spec_like(1)
        .instructions(INSTR)
        .warmup(WARMUP);
    let base = Simulation::single_thread(&cfg, Preset::Lru, &w).run();
    let coop = Simulation::single_thread(&cfg, Preset::ItpXptp, &w).run();
    assert!(
        coop.speedup_pct_over(&base) > -2.0,
        "SPEC-like regression too large: {:.2}%",
        coop.speedup_pct_over(&base)
    );
}
