//! Cross-crate plumbing tests: determinism, statistics consistency, and
//! the Figure 7 dataflow (Type bits from STLB MSHRs to L2C blocks).

use itpx::prelude::*;
use itpx_trace::suites::smt_suite;

const INSTR: u64 = 80_000;
const WARMUP: u64 = 20_000;

fn w(seed: u64) -> WorkloadSpec {
    WorkloadSpec::server_like(seed)
        .instructions(INSTR)
        .warmup(WARMUP)
}

#[test]
fn simulations_are_bit_deterministic() {
    let cfg = SystemConfig::asplos25();
    for preset in [Preset::Lru, Preset::ItpXptp, Preset::Tdrrip] {
        let a = Simulation::single_thread(&cfg, preset, &w(9)).run();
        let b = Simulation::single_thread(&cfg, preset, &w(9)).run();
        assert_eq!(a, b, "{preset} not deterministic");
    }
}

#[test]
fn smt_runs_are_deterministic_too() {
    let cfg = SystemConfig::asplos25();
    let mut pair = smt_suite(1).remove(0);
    pair.a = pair.a.instructions(INSTR).warmup(WARMUP);
    pair.b = pair.b.instructions(INSTR).warmup(WARMUP);
    let a = Simulation::smt(&cfg, Preset::ItpXptp, &pair).run();
    let b = Simulation::smt(&cfg, Preset::ItpXptp, &pair).run();
    assert_eq!(a, b);
}

#[test]
fn walk_traffic_reaches_l2_with_type_bits() {
    // Figure 7 steps 2–4: page-walk references carry their translation
    // kind into L2C statistics (dt/it classes).
    let cfg = SystemConfig::asplos25();
    let out = Simulation::single_thread(&cfg, Preset::Lru, &w(4)).run();
    let l2 = out.l2c_breakdown();
    assert!(l2.data_pte > 0.0, "no data-PTE traffic at L2C");
    assert!(l2.instr_pte > 0.0, "no instr-PTE traffic at L2C");
    assert!(out.walker.data_walks > 0 && out.walker.instruction_walks > 0);
}

#[test]
fn walker_and_stlb_miss_counts_are_consistent() {
    // Every STLB miss resolves through the walker (merged misses share a
    // walk, so walks <= misses).
    let cfg = SystemConfig::asplos25();
    let out = Simulation::single_thread(&cfg, Preset::Lru, &w(12)).run();
    assert!(out.walker.walks > 0);
    assert!(
        out.walker.walks <= out.stlb.misses() + 16,
        "more walks ({}) than STLB misses ({})",
        out.walker.walks,
        out.stlb.misses()
    );
    // Walks come from both kinds and sum up.
    assert_eq!(
        out.walker.walks,
        out.walker.data_walks + out.walker.instruction_walks
    );
}

#[test]
fn measurement_excludes_warmup() {
    // Same measured length, different warmup: cycle counts must be for
    // the measured region only (within noise, more warmup => warmer
    // caches => no slower).
    let cfg = SystemConfig::asplos25();
    let cold = Simulation::single_thread(
        &cfg,
        Preset::Lru,
        &WorkloadSpec::server_like(2)
            .instructions(INSTR)
            .warmup(1_000),
    )
    .run();
    let warm = Simulation::single_thread(
        &cfg,
        Preset::Lru,
        &WorkloadSpec::server_like(2)
            .instructions(INSTR)
            .warmup(100_000),
    )
    .run();
    assert_eq!(cold.instructions(), warm.instructions());
    assert!(
        warm.ipc() > cold.ipc() * 0.95,
        "warmup should not hurt: warm {:.4} vs cold {:.4}",
        warm.ipc(),
        cold.ipc()
    );
}

#[test]
fn trace_serialization_roundtrips_through_disk() {
    use itpx_trace::{read_trace, write_trace, TraceGenerator};
    let spec = w(3);
    let insts: Vec<_> = TraceGenerator::new(&spec).take(5_000).collect();
    let mut buf = Vec::new();
    write_trace(&mut buf, &insts).expect("write");
    let back = read_trace(buf.as_slice()).expect("read");
    assert_eq!(insts, back);
}

#[test]
fn facade_reexports_are_usable() {
    // The `itpx` facade exposes everything the README quickstart needs.
    let _ = itpx::core::ItpParams::default();
    let _ = itpx::policy::Lru::new(2, 2);
    let _ = itpx::types::Rng64::new(1);
    let _ = itpx::vm::HugePagePolicy::none();
    let _ = itpx::mem::DramConfig::default();
    let _ = itpx::trace::WorkloadSpec::server_like(0);
}

#[test]
fn replayed_traces_drive_the_full_simulator() {
    use itpx_trace::TraceGenerator;
    let cfg = SystemConfig::asplos25();
    let spec = w(6);
    let insts: Vec<_> = TraceGenerator::new(&spec).take(60_000).collect();
    let out =
        itpx_cpu::Simulation::replay(&cfg, Preset::ItpXptp, "loop", insts, 50_000, 10_000).run();
    assert_eq!(out.instructions(), 50_000);
    assert!(out.ipc() > 0.01);
    assert!(out.stlb.accesses() > 0);
    // Replay of the same trace is deterministic too.
    let spec2 = w(6);
    let insts2: Vec<_> = TraceGenerator::new(&spec2).take(60_000).collect();
    let out2 =
        itpx_cpu::Simulation::replay(&cfg, Preset::ItpXptp, "loop", insts2, 50_000, 10_000).run();
    assert_eq!(out, out2);
}

#[test]
fn smt_replay_pairs_run_end_to_end() {
    use itpx_trace::TraceGenerator;
    let cfg = SystemConfig::asplos25();
    let a: Vec<_> = TraceGenerator::new(&w(1)).take(40_000).collect();
    let b: Vec<_> = TraceGenerator::new(&w(2)).take(40_000).collect();
    let out = itpx_cpu::Simulation::replay_pair(
        &cfg,
        Preset::ItpXptp,
        ("a".into(), a),
        ("b".into(), b),
        30_000,
        8_000,
    )
    .run();
    assert_eq!(out.threads.len(), 2);
    assert_eq!(out.instructions(), 60_000);
    assert!(out.ipc() > 0.01);
}
