//! Huge-page sensitivity (the paper's Section 6.5): how the value of
//! cooperative replacement shrinks as the OS backs more of the footprint
//! with 2 MiB pages.
//!
//! ```sh
//! cargo run --release --example hugepages
//! ```

use itpx::prelude::*;
use itpx_vm::HugePagePolicy;

fn main() {
    let workload = WorkloadSpec::server_like(11)
        .instructions(300_000)
        .warmup(80_000);

    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>10}",
        "2MB%", "LRU IPC", "coop IPC", "uplift", "walks/1k"
    );
    for fraction in [0.0, 0.1, 0.5, 1.0] {
        let config =
            SystemConfig::asplos25().with_huge_pages(HugePagePolicy::uniform(fraction, 77));
        let base = Simulation::single_thread(&config, Preset::Lru, &workload).run();
        let coop = Simulation::single_thread(&config, Preset::ItpXptp, &workload).run();
        println!(
            "{:>5.0}% {:>10.4} {:>10.4} {:>+9.2}% {:>10.2}",
            fraction * 100.0,
            base.ipc(),
            coop.ipc(),
            coop.speedup_pct_over(&base),
            base.walker.walks as f64 * 1000.0 / base.instructions() as f64,
        );
    }
    println!("\n2 MiB pages widen TLB reach, so STLB misses — and with them the");
    println!("opportunity for instruction-aware replacement — fade as the fraction");
    println!("grows; the paper argues 4 KiB-heavy deployments remain the common");
    println!("case on long-uptime servers (fragmentation defeats huge pages).");
}
