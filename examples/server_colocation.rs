//! SMT co-location study: two server workloads sharing one core.
//!
//! Reproduces the paper's Section 5.2 scenario in miniature: pairs of
//! workloads in the three pressure categories (intense / medium / relaxed)
//! run under the LRU baseline and under iTP+xPTP, reporting per-thread and
//! aggregate effects of the cooperative policies under contention.
//!
//! ```sh
//! cargo run --release --example server_colocation
//! ```

use itpx::prelude::*;
use itpx_trace::suites::smt_suite;

fn main() {
    let config = SystemConfig::asplos25();
    let pairs: Vec<SmtPairSpec> = smt_suite(3)
        .into_iter()
        .map(|mut p| {
            p.a = p.a.instructions(250_000).warmup(60_000);
            p.b = p.b.instructions(250_000).warmup(60_000);
            p
        })
        .collect();

    println!(
        "{:<28} {:<9} {:>9} {:>9} {:>8} {:>10}",
        "pair", "category", "LRU IPC", "coop IPC", "uplift", "STLB MPKI"
    );
    for pair in &pairs {
        let base = Simulation::smt(&config, Preset::Lru, pair).run();
        let coop = Simulation::smt(&config, Preset::ItpXptp, pair).run();
        println!(
            "{:<28} {:<9} {:>9.4} {:>9.4} {:>+7.2}% {:>5.1}->{:<4.1}",
            pair.name(),
            pair.category.name(),
            base.ipc(),
            coop.ipc(),
            coop.speedup_pct_over(&base),
            base.stlb_mpki(),
            coop.stlb_mpki(),
        );
        for (t_base, t_coop) in base.threads.iter().zip(&coop.threads) {
            println!(
                "    {:<24} thread IPC {:.4} -> {:.4} (itrans stall {:.1}% -> {:.1}%)",
                t_base.workload,
                t_base.ipc(),
                t_coop.ipc(),
                t_base.itrans_stall_fraction() * 100.0,
                t_coop.itrans_stall_fraction() * 100.0,
            );
        }
    }
    println!("\nThe intense pairs see the largest cooperative gains: both threads");
    println!("fight for STLB capacity, which is exactly the pressure iTP+xPTP targets.");
}
