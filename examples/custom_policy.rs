//! Authoring a custom replacement policy against the `itpx` API.
//!
//! Implements a toy "pin instructions" STLB policy — instruction
//! translations are simply never victimized while any data translation is
//! resident — plugs it into the full simulator next to LRU and iTP, and
//! compares. Handy as a template for experimenting with new policies.
//!
//! ```sh
//! cargo run --release --example custom_policy
//! ```

use itpx::prelude::*;
use itpx_core::presets::PolicyBundle;
use itpx_policy::{Lru, Policy, RecencyStack, TlbMeta, TlbPolicyEngine};

/// A deliberately extreme variant of the paper's idea: strict instruction
/// pinning (iTP without the frequency nuance or the data promotion band).
#[derive(Debug)]
struct PinInstructions {
    stack: RecencyStack,
    is_instr: Vec<Vec<bool>>,
}

impl PinInstructions {
    fn new(sets: usize, ways: usize) -> Self {
        Self {
            stack: RecencyStack::new(sets, ways),
            is_instr: vec![vec![false; ways]; sets],
        }
    }
}

impl Policy<TlbMeta> for PinInstructions {
    fn on_fill(&mut self, set: usize, way: usize, meta: &TlbMeta) {
        self.is_instr[set][way] = meta.kind.is_instruction();
        self.stack.touch(set, way);
    }

    fn on_hit(&mut self, set: usize, way: usize, meta: &TlbMeta) {
        self.is_instr[set][way] = meta.kind.is_instruction();
        self.stack.touch(set, way);
    }

    fn victim(&mut self, set: usize, _incoming: &TlbMeta) -> usize {
        self.stack
            .iter_lru_to_mru(set)
            .find(|&w| !self.is_instr[set][w])
            .unwrap_or_else(|| self.stack.lru(set))
    }

    fn name(&self) -> &'static str {
        "pin-instructions"
    }

    fn meta_bits(&self, sets: usize, ways: usize) -> u64 {
        // LRU ranks + one instruction flag per entry.
        sets as u64 * ways as u64 * (itpx_policy::traits::rank_bits(ways) + 1)
    }
}

fn main() {
    let config = SystemConfig::asplos25();
    let workload = WorkloadSpec::server_like(3)
        .instructions(300_000)
        .warmup(80_000);

    let dims = config.dims();
    // Out-of-tree policies ride the engines' `Dyn` escape hatch (in-tree
    // policies like the LRU fills convert into their own inlined variant).
    let custom = PolicyBundle {
        stlb: TlbPolicyEngine::boxed(PinInstructions::new(dims.stlb.0, dims.stlb.1)),
        l2c: Lru::new(dims.l2c.0, dims.l2c.1).into(),
        llc: Lru::new(dims.llc.0, dims.llc.1).into(),
        monitor: None,
    };

    let lru = Simulation::single_thread(&config, Preset::Lru, &workload).run();
    let itp = Simulation::single_thread(&config, Preset::Itp, &workload).run();
    let pin =
        Simulation::custom(&config, custom, "PinInstr", std::slice::from_ref(&workload)).run();

    println!("policy        IPC      iMPKI   dMPKI   (uplift vs LRU)");
    for out in [&lru, &itp, &pin] {
        let b = out.stlb_breakdown();
        println!(
            "{:<12} {:.4}   {:<7.2} {:<7.2} ({:+.2}%)",
            out.preset,
            out.ipc(),
            b.instr,
            b.data,
            out.speedup_pct_over(&lru)
        );
    }
    println!("\nStrict pinning kills even more instruction misses than iTP, but its");
    println!("data translations churn harder; iTP's measured insertion depths (N/M)");
    println!("and frequency gate are what keep the trade profitable.");
}
