//! Quickstart: run the paper's headline comparison on one workload.
//!
//! Simulates a server-like workload (large instruction footprint) on the
//! Table 1 machine under the LRU baseline and under iTP+xPTP, and prints
//! the IPC uplift plus the STLB/L2C effects that produce it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use itpx::prelude::*;

fn main() {
    let config = SystemConfig::asplos25();
    let workload = WorkloadSpec::server_like(7)
        .instructions(400_000)
        .warmup(100_000);

    println!(
        "workload: {} (code ~{} KiB)",
        workload.name,
        workload.profile.code_pages * 4
    );

    let base = Simulation::single_thread(&config, Preset::Lru, &workload).run();
    let itp = Simulation::single_thread(&config, Preset::Itp, &workload).run();
    let coop = Simulation::single_thread(&config, Preset::ItpXptp, &workload).run();

    for out in [&base, &itp, &coop] {
        let b = out.stlb_breakdown();
        println!(
            "{:<10} IPC {:.4} | STLB MPKI {:6.2} (i {:5.2} / d {:5.2}, avg miss {:6.1} cy) | \
             L2C MPKI {:6.2} (dPTE {:5.2}) | LLC MPKI {:6.2}",
            out.preset,
            out.ipc(),
            out.stlb_mpki(),
            b.instr,
            b.data,
            out.stlb.avg_miss_latency(),
            out.l2c_mpki(),
            out.l2c_breakdown().data_pte,
            out.llc_mpki(),
        );
    }

    println!(
        "\niTP      vs LRU: {:+.1}%\niTP+xPTP vs LRU: {:+.1}%  (xPTP active {:.0}% of epochs)",
        itp.speedup_pct_over(&base),
        coop.speedup_pct_over(&base),
        coop.xptp_enabled_fraction.unwrap_or(0.0) * 100.0
    );
}
